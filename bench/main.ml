(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (§4).

    Usage: [bench/main.exe [table2|table3|fig16|fig17|fig18a|fig18b|fig18c|
    ablation-memo|ablation-pwj|micro|micro-exec|part-select|obs-overhead|
    verify|join-filter|opt-scaling|all]] — no argument runs everything
    except the bechamel micro-benchmarks.  [micro-exec] measures the executor hot path
    (interpreted vs compiled expressions, serial vs domain-pool join);
    [part-select] measures partition-selection cost vs partition count
    (legacy scan vs the selection index, the paper's Fig. 14 shape);
    [verify] measures plan-verifier cost against optimize time (the <1%
    overhead budget) and its scaling with plan size; [join-filter]
    measures runtime-join-filter speedup (on vs off, same plan) and
    Motion-row reduction from pre-Motion filtering; [profile] measures
    the PR-6 query profiler's overhead (off vs pool accounting vs full
    stats+trace) on the Table-2 scan; [opt-scaling] measures optimize
    time vs relation count on generated big-join graphs and optimize-time
    speedup vs domain count, asserting every domain count picks the
    identical plan; [serve] measures the concurrent serving layer's
    sustained QPS on the mixed workload, cold (empty plan cache) vs warm
    (normalized-fingerprint cache hits) over 1..K sessions; the
    [--smoke] variants are the tiny-input schema checks that
    [dune runtest] runs.  Whatever ran is also written as structured data
    to [BENCH_RESULTS.json]; sections merge with an existing file, so
    single experiments can be re-run without losing the rest.
    [check-regression [BASELINE]] compares a fresh [BENCH_RESULTS.json]
    against the committed [bench/BASELINE.json] (±20% per pinned metric)
    and exits 1 loudly on regression.

    Absolute numbers differ from the paper (its substrate was a 16-node
    Greenplum cluster over 256 GB of TPC-DS; ours is an in-process simulated
    cluster over synthetic data) — the claims under test are the *shapes*:
    who eliminates which partitions, how plan size scales with partition
    count, and where partition selection helps or hurts. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Cat = Mpp_catalog.Catalog
module Table = Mpp_catalog.Table
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module W = Mpp_workload
module Json = Mpp_obs.Json
module Obs = Mpp_obs.Obs

(* A large minor heap and a lazy major GC keep collector scheduling from
   drowning the small per-partition overheads Table 2 measures. *)
let () =
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 24; space_overhead = 400 }

let line = String.make 72 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* Structured results: every experiment records a JSON section under its
   name; whatever ran is written to BENCH_RESULTS.json on exit. *)
let results : (string * Json.t) list ref = ref []
let record name json = results := !results @ [ (name, json) ]

(* Sections of a previous run that this run did not re-measure; re-running
   one experiment updates its section and keeps the rest. *)
let previous_results () =
  if not (Sys.file_exists "BENCH_RESULTS.json") then []
  else
    let doc =
      try
        let ic = open_in_bin "BENCH_RESULTS.json" in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            Json.parse_opt (really_input_string ic (in_channel_length ic)))
      with _ -> None
    in
    match doc with
    | Some (Json.Obj fields) -> (
        match List.assoc_opt "experiments" fields with
        | Some (Json.Obj exps) -> exps
        | _ -> [])
    | _ -> []

let write_results () =
  if !results <> [] then begin
    let kept =
      List.filter
        (fun (k, _) -> not (List.mem_assoc k !results))
        (previous_results ())
    in
    let json =
      Json.Obj
        [ ("schema", Json.String "mpp-parts-bench/1");
          ("experiments", Json.Obj (kept @ !results)) ]
    in
    Json.to_file "BENCH_RESULTS.json" json;
    Printf.printf "\nresults written to BENCH_RESULTS.json\n"
  end

let median l =
  let s = List.sort Float.compare l in
  List.nth s (List.length s / 2)

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* ------------------------------------------------------------------ *)
(* Table 2: partitioning overhead of a full scan                        *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header
    "Table 2: overhead of partitioning (full scan of lineitem, 7 years)";
  Printf.printf "%-22s %-10s %-12s %-10s\n" "#parts" "scan (ms)" "vs unpart"
    "paper";
  let rows = 500_000 in
  let scenarios =
    [ (W.Tpch.Unpartitioned, "-");
      (W.Tpch.Parts_42, "3%");
      (W.Tpch.Parts_84, "3%");
      (W.Tpch.Parts_169, "1%");
      (W.Tpch.Parts_361, "2%") ]
  in
  (* One scenario at a time (so each dataset is alone on the heap), warmed
     up and compacted; report the median of [runs] timed runs — a robust
     location estimate that, unlike the previous best-of, is also stable
     when the machine is *uniformly* slow rather than intermittently noisy.
     The per-partition bookkeeping cost is what is under test, not GC
     scheduling. *)
  let runs = 11 in
  let timings =
    List.map
      (fun (scenario, paper) ->
        (* collect the previous scenario's dataset BEFORE allocating this
           one: otherwise the first post-predecessor scenario is measured on
           a transiently doubled major heap and reads 2-3x slow — a purely
           positional artifact (it follows list order, not the scenario) *)
        Gc.compact ();
        let catalog = Cat.create () in
        let storage = Storage.create ~nsegments:4 in
        let _ = W.Tpch.setup ~catalog ~storage ~scenario ~rows in
        let lg = Mpp_sql.Sql.to_logical catalog "SELECT count(*) FROM lineitem" in
        let plan =
          Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg
        in
        for _ = 1 to 3 do
          ignore (Mpp_exec.Exec.run ~catalog ~storage plan)
        done;
        Gc.compact ();
        let ts =
          List.init runs (fun _ ->
              fst (time_run (fun () -> Mpp_exec.Exec.run ~catalog ~storage plan)))
        in
        (scenario, paper, median ts))
      scenarios
  in
  let base =
    match timings with (_, _, t) :: _ -> t | [] -> 1.0
  in
  List.iter
    (fun (scenario, paper, t) ->
      let overhead = 100.0 *. (t -. base) /. base in
      Printf.printf "%-22s %-10.1f %-12s %-10s\n"
        (W.Tpch.scenario_name scenario) (t *. 1000.0)
        (if scenario = W.Tpch.Unpartitioned then "-"
         else Printf.sprintf "%+.1f%%" overhead)
        paper)
    timings;
  record "table2"
    (Json.List
       (List.map
          (fun (scenario, _, t) ->
            Json.Obj
              [ ("scenario", Json.String (W.Tpch.scenario_name scenario));
                ("scan_ms", Json.Float (t *. 1000.0));
                ("overhead_pct", Json.Float (100.0 *. (t -. base) /. base));
                ("runs", Json.Int runs) ])
          timings))

(* ------------------------------------------------------------------ *)
(* Table 3 + Figure 16: workload classification & parts scanned        *)
(* ------------------------------------------------------------------ *)

let workload_env = ref None

let get_env () =
  match !workload_env with
  | Some env -> env
  | None ->
      let env = W.Runner.setup_env ~scale:4 () in
      workload_env := Some env;
      env

let table3 () =
  header
    (Printf.sprintf "Table 3: workload classification (%d-query star-schema \
                     workload)"
       (List.length W.Queries.all));
  let env = get_env () in
  let outcomes = W.Classify.run_workload env in
  Printf.printf "%-52s %-10s %-8s %s\n" "Category" "queries" "ours" "paper";
  let paper = [ "11%"; "3%"; "80%"; "3%"; "3%" ] in
  let breakdown = W.Classify.breakdown outcomes in
  List.iter2
    (fun (cat, count, pct) p ->
      Printf.printf "%-52s %-10d %-8s %s\n"
        (W.Queries.category_to_string cat)
        count
        (Printf.sprintf "%.0f%%" pct)
        p)
    breakdown paper;
  record "table3"
    (Json.List
       (List.map
          (fun (cat, count, pct) ->
            Json.Obj
              [ ("category", Json.String (W.Queries.category_to_string cat));
                ("queries", Json.Int count);
                ("pct", Json.Float pct) ])
          breakdown))

let fig16 () =
  header
    "Figure 16: partitions scanned per table, aggregated over the workload";
  let env = get_env () in
  Printf.printf "%-18s %-9s %-9s %-14s\n" "table" "Planner" "Orca"
    "Orca saves";
  let rows = W.Classify.parts_by_table env in
  List.iter
    (fun (name, planner, orca, _total) ->
      Printf.printf "%-18s %-9d %-9d %-14s\n" name planner orca
        (if planner = 0 then "-"
         else
           Printf.sprintf "%.0f%%"
             (100.0 *. float_of_int (planner - orca) /. float_of_int planner)))
    rows;
  record "fig16"
    (Json.List
       (List.map
          (fun (name, planner, orca, total) ->
            Json.Obj
              [ ("table", Json.String name);
                ("planner_parts", Json.Int planner);
                ("orca_parts", Json.Int orca);
                ("total_parts", Json.Int total) ])
          rows))

(* ------------------------------------------------------------------ *)
(* Figure 17: runtime improvement from partition selection             *)
(* ------------------------------------------------------------------ *)

let fig17 () =
  header
    "Figure 17: relative runtime improvement, partition selection ON vs OFF";
  let env = get_env () in
  (* sub-millisecond executions are noise-dominated: time batches of five
     consecutive runs and take the median of five batches *)
  let measure kind qu =
    let batch () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 5 do
        ignore (W.Runner.run env kind qu)
      done;
      (Unix.gettimeofday () -. t0) /. 5.0
    in
    ignore (batch ());
    median (List.init 5 (fun _ -> batch ()))
  in
  let results =
    List.map
      (fun qu ->
        let off = measure W.Runner.Orca_no_selection qu in
        let on_ = measure W.Runner.Orca qu in
        (qu, off, on_, 100.0 *. (1.0 -. (on_ /. off))))
      W.Queries.all
  in
  (* the paper orders queries by (unselected) runtime and buckets them *)
  let sorted = List.sort (fun (_, a, _, _) (_, b, _, _) -> Float.compare a b)
      results in
  let n = List.length sorted in
  Printf.printf "%-28s %-12s %-12s %-12s %s\n" "query" "off (ms)" "on (ms)"
    "improvement" "block";
  List.iteri
    (fun i (qu, off, on_, imp) ->
      let block =
        if i < n / 3 then "short-running"
        else if i < 2 * n / 3 then "medium"
        else "long-running"
      in
      Printf.printf "%-28s %-12.2f %-12.2f %+10.1f%%  %s\n"
        qu.W.Queries.name (off *. 1000.) (on_ *. 1000.) imp block)
    sorted;
  let improved =
    List.filter (fun (_, _, _, imp) -> imp > 0.0) results |> List.length
  in
  let above50 =
    List.filter (fun (_, _, _, imp) -> imp >= 50.0) results |> List.length
  in
  let above70 =
    List.filter (fun (_, _, _, imp) -> imp >= 70.0) results |> List.length
  in
  Printf.printf
    "\nsummary: %d/%d queries improved; %d/%d improved >= 50%% (paper: more \
     than half); %d/%d improved >= 70%% (paper: over 25%%)\n"
    improved n above50 n above70 n;
  record "fig17"
    (Json.Obj
       [ ("queries",
          Json.List
            (List.map
               (fun (qu, off, on_, imp) ->
                 Json.Obj
                   [ ("query", Json.String qu.W.Queries.name);
                     ("off_ms", Json.Float (off *. 1000.0));
                     ("on_ms", Json.Float (on_ *. 1000.0));
                     ("improvement_pct", Json.Float imp) ])
               sorted));
         ("improved", Json.Int improved);
         ("above_50pct", Json.Int above50);
         ("above_70pct", Json.Int above70);
         ("total", Json.Int n) ])

(* ------------------------------------------------------------------ *)
(* Figure 18: plan size                                                 *)
(* ------------------------------------------------------------------ *)

(* 18(a): static elimination — plan size vs % of partitions selected. *)
let fig18a () =
  header
    "Figure 18(a): plan size vs % of partitions scanned (static elimination)";
  let catalog = Cat.create () in
  let storage = Storage.create ~nsegments:4 in
  let _ = W.Tpch.setup ~catalog ~storage ~scenario:W.Tpch.Parts_84 ~rows:0 in
  Printf.printf "%-12s %-14s %-14s\n" "% parts" "Planner (KB)" "Orca (KB)";
  let rows =
    List.map
      (fun pct ->
        let nparts = max 1 (84 * pct / 100) in
        (* cutoff date selecting the first [nparts] monthly partitions *)
        let cutoff = Date.add_months (Date.of_ymd 1992 1 1) nparts in
        let sql =
          Printf.sprintf "SELECT * FROM lineitem WHERE l_shipdate < '%s'"
            (Date.to_string cutoff)
        in
        let lg = Mpp_sql.Sql.to_logical catalog sql in
        let planner_plan =
          Mpp_planner.Planner.plan (Mpp_planner.Planner.create ~catalog ()) lg
        in
        let orca_plan =
          Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg
        in
        let pkb = Mpp_plan.Plan_size.kilobytes ~catalog planner_plan
        and okb = Mpp_plan.Plan_size.kilobytes ~catalog orca_plan in
        Printf.printf "%-12d %-14.1f %-14.1f\n" pct pkb okb;
        Json.Obj
          [ ("pct_parts", Json.Int pct);
            ("planner_kb", Json.Float pkb);
            ("orca_kb", Json.Float okb) ])
      [ 1; 25; 50; 75; 100 ]
  in
  record "fig18a" (Json.List rows)

(* Synthetic R(a,b), S(a,b) partitioned on b, as in §4.4.2/§4.4.3.
   [hash_on_key] distributes on b instead of a (co-location on the
   partitioning key, needed by the partition-wise-join ablation). *)
let make_rs ?(hash_on_key = false) ~nparts () =
  let catalog = Cat.create () in
  let part table_name =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:1 ~key_name:"b" ~scheme:Part.Range ~table_name
      (Part.int_ranges ~start:0 ~width:100 ~count:nparts)
  in
  let dist = Dist.Hashed [ (if hash_on_key then 1 else 0) ] in
  let _r =
    Cat.add_table catalog ~name:"r"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:dist ~partitioning:(part "r") ()
  in
  let _s =
    Cat.add_table catalog ~name:"s"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:dist ~partitioning:(part "s") ()
  in
  catalog

let fig18b () =
  header
    "Figure 18(b): plan size vs #partitions (join with dynamic elimination)";
  Printf.printf "%-12s %-14s %-14s\n" "#parts" "Planner (KB)" "Orca (KB)";
  let rows =
    List.map
      (fun nparts ->
        let catalog = make_rs ~nparts () in
        let sql = "SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100" in
        let lg = Mpp_sql.Sql.to_logical catalog sql in
        let planner_plan =
          Mpp_planner.Planner.plan (Mpp_planner.Planner.create ~catalog ()) lg
        in
        let orca_plan =
          Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg
        in
        let pkb = Mpp_plan.Plan_size.kilobytes ~catalog planner_plan
        and okb = Mpp_plan.Plan_size.kilobytes ~catalog orca_plan in
        Printf.printf "%-12d %-14.1f %-14.1f\n" nparts pkb okb;
        Json.Obj
          [ ("nparts", Json.Int nparts);
            ("planner_kb", Json.Float pkb);
            ("orca_kb", Json.Float okb) ])
      [ 50; 100; 150; 200; 250; 300 ]
  in
  record "fig18b" (Json.List rows)

let fig18c () =
  header "Figure 18(c): plan size vs #partitions (DML over partitioned tables)";
  Printf.printf "%-12s %-14s %-14s\n" "#parts" "Planner (KB)" "Orca (KB)";
  let rows =
    List.map
      (fun nparts ->
        let catalog = make_rs ~nparts () in
        let sql = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a" in
        let lg = Mpp_sql.Sql.to_logical catalog sql in
        let planner_plan =
          Mpp_planner.Planner.plan (Mpp_planner.Planner.create ~catalog ()) lg
        in
        let orca_plan =
          Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg
        in
        let pkb = Mpp_plan.Plan_size.kilobytes ~catalog planner_plan
        and okb = Mpp_plan.Plan_size.kilobytes ~catalog orca_plan in
        Printf.printf "%-12d %-14.1f %-14.1f\n" nparts pkb okb;
        Json.Obj
          [ ("nparts", Json.Int nparts);
            ("planner_kb", Json.Float pkb);
            ("orca_kb", Json.Float okb) ])
      [ 50; 100; 150; 200; 250; 300 ]
  in
  record "fig18c" (Json.List rows)

(* ------------------------------------------------------------------ *)
(* Ablation: memo property enforcement                                  *)
(* ------------------------------------------------------------------ *)

let ablation_memo () =
  header "Ablation: memo plan space for R join S (paper Figure 13/14)";
  let catalog = make_rs ~nparts:10 () in
  let r = Cat.find catalog "r" and s = Cat.find catalog "s" in
  let lg =
    Orca.Logical.join
      (Expr.eq
         (Expr.col (Table.colref r ~rel:0 "b"))
         (Expr.col (Table.colref s ~rel:1 "a")))
      (Orca.Logical.get ~rel:0 "r")
      (Orca.Logical.get ~rel:1 "s")
  in
  let alts = Orca.Memo.plan_space ~catalog ~limit:16 lg in
  Printf.printf "%d valid plan alternatives enumerated\n" (List.length alts);
  let with_dpe =
    List.filter
      (fun p ->
        Plan.fold
          (fun acc n ->
            acc
            || match n with
               | Plan.Partition_selector { predicates; child = Some _; _ } ->
                   List.exists Option.is_some predicates
               | _ -> false)
          false p)
      alts
  in
  Printf.printf
    "%d of them perform join-driven partition selection (the paper's Plan 4)\n"
    (List.length with_dpe);
  let best_cost =
    match Orca.Memo.best_plan ~catalog lg with
    | Some (plan, cost) ->
        Printf.printf "best plan (cost %.1f):\n%s\n" cost (Plan.to_string plan);
        Json.Float cost
    | None ->
        print_endline "no plan found";
        Json.Null
  in
  record "ablation_memo"
    (Json.Obj
       [ ("alternatives", Json.Int (List.length alts));
         ("with_dpe", Json.Int (List.length with_dpe));
         ("best_cost", best_cost) ]);
  match with_dpe with
  | p :: _ ->
      Printf.printf "example partition-selecting plan:\n%s\n" (Plan.to_string p)
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Ablation: partition-wise joins (paper §5 related work)              *)
(* ------------------------------------------------------------------ *)

(* The alternative the paper contrasts with (Herodotou et al., Oracle):
   expand a key-to-key join of identically partitioned tables into an
   Append of per-partition joins.  Execution is competitive — but plan size
   grows linearly with the partition count again, the exact property the
   DynamicScan representation was designed to avoid. *)
let ablation_pwj () =
  header
    "Ablation: partition-wise join (related-work alternative, paper Sec. 5)";
  Printf.printf "%-10s %-16s %-16s %-14s %-14s\n" "#parts" "DynScan (KB)"
    "PartWise (KB)" "DynScan ms" "PartWise ms";
  List.iter
    (fun nparts ->
      let catalog = make_rs ~hash_on_key:true ~nparts () in
      let storage = Storage.create ~nsegments:4 in
      let r = Cat.find catalog "r" and s = Cat.find catalog "s" in
      let rng = W.Rng.create () in
      for i = 0 to 20_000 - 1 do
        let b = W.Rng.int rng (nparts * 100) in
        Storage.insert storage r [| Value.Int i; Value.Int b |];
        Storage.insert storage s
          [| Value.Int (W.Rng.int rng 20_000); Value.Int b |]
      done;
      let lg =
        Mpp_sql.Sql.to_logical catalog
          "SELECT count(*) FROM r, s WHERE r.b = s.b AND s.a < 1000"
      in
      let optimize config =
        Orca.Optimizer.optimize (Orca.Optimizer.create ~config ~catalog ()) lg
      in
      let dyn = optimize Orca.Optimizer.default_config in
      let pwj =
        optimize
          { Orca.Optimizer.default_config with
            enable_partition_wise_join = true }
      in
      let time plan =
        ignore (Mpp_exec.Exec.run ~catalog ~storage plan);
        let ts =
          List.init 5 (fun _ ->
              fst (time_run (fun () -> Mpp_exec.Exec.run ~catalog ~storage plan)))
        in
        1000.0 *. List.fold_left Float.min Float.infinity ts
      in
      let r1, _ = Mpp_exec.Exec.run ~catalog ~storage dyn in
      let r2, _ = Mpp_exec.Exec.run ~catalog ~storage pwj in
      assert (r1 = r2);
      let dkb = Mpp_plan.Plan_size.kilobytes ~catalog dyn
      and pkb = Mpp_plan.Plan_size.kilobytes ~catalog pwj
      and dms = time dyn
      and pms = time pwj in
      Printf.printf "%-10d %-16.1f %-16.1f %-14.2f %-14.2f\n" nparts dkb pkb
        dms pms;
      record
        (Printf.sprintf "ablation_pwj_%d" nparts)
        (Json.Obj
           [ ("nparts", Json.Int nparts);
             ("dynscan_kb", Json.Float dkb);
             ("partwise_kb", Json.Float pkb);
             ("dynscan_ms", Json.Float dms);
             ("partwise_ms", Json.Float pms) ]))
    [ 25; 50; 100; 200 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (one per experiment family)";
  let open Bechamel in
  let catalog = make_rs ~nparts:300 () in
  let table = Cat.find catalog "r" in
  let partitioning = Option.get table.Table.partitioning in
  let restriction =
    [| Some (Interval.Set.singleton (Interval.at_most (Value.Int 5000))) |]
  in
  let test_selection =
    Test.make ~name:"partition-selection-300-parts"
      (Staged.stage (fun () ->
           ignore (Part.select_oids partitioning restriction)))
  in
  let sql_join = "SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100" in
  let lg = Mpp_sql.Sql.to_logical catalog sql_join in
  let test_optimize =
    Test.make ~name:"orca-optimize-join-300-parts"
      (Staged.stage (fun () ->
           ignore
             (Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg)))
  in
  let test_planner =
    Test.make ~name:"planner-expand-join-300-parts"
      (Staged.stage (fun () ->
           ignore
             (Mpp_planner.Planner.plan
                (Mpp_planner.Planner.create ~catalog ())
                lg)))
  in
  let a =
    Interval.Set.of_list
      (List.init 32 (fun i ->
           Option.get
             (Interval.closed_open (Value.Int (i * 10)) (Value.Int ((i * 10) + 5)))))
  in
  let b =
    Interval.Set.of_list
      (List.init 32 (fun i ->
           Option.get
             (Interval.closed_open (Value.Int (i * 7)) (Value.Int ((i * 7) + 3)))))
  in
  let test_interval =
    Test.make ~name:"interval-set-intersection"
      (Staged.stage (fun () -> ignore (Interval.Set.inter a b)))
  in
  let tests =
    Test.make_grouped ~name:"partitioned-tables"
      [ test_selection; test_optimize; test_planner; test_interval ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-48s %14.1f ns/run\n" name est
          | _ -> Printf.printf "%-48s (no estimate)\n" name)
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Executor hot path: compiled expressions and the domain pool          *)
(* ------------------------------------------------------------------ *)

(* The two claims behind the executor overhaul, measured directly:

   1. scan-filter: evaluating a predicate through the old interpreter
      contract (a per-row [Expr.env] whose [col] callback performs the
      linear layout search) vs the compiled [Expr.compile_pred] closure
      (offsets resolved once, per-row work is array loads);
   2. a hash join on a multi-segment cluster executed serially vs through
      the domain pool ([?domains]).

   [~smoke] runs the same code on tiny inputs and asserts only that both
   sides were measured and the JSON section has the right shape — no
   performance thresholds, so it is safe under [dune runtest] on any
   machine.  The honest parallel caveat: wall-clock speedup from domains
   requires actual cores; the [cores] field records what this host had. *)
let micro_exec ?(smoke = false) () =
  header
    (if smoke then "Micro: executor hot path (smoke mode, tiny inputs)"
     else "Micro: executor hot path (compiled expressions, domain pool)");
  let cores = Domain.recommended_domain_count () in
  let best_of k f =
    ignore (f ());
    (* warm-up *)
    let best = ref Float.infinity in
    for _ = 1 to k do
      let t, _ = time_run f in
      if t < !best then best := t
    done;
    !best
  in
  let reps = if smoke then 3 else 7 in
  (* ---- 1. scan-filter: interpreted env-per-row vs compiled ---- *)
  let nrows = if smoke then 2_000 else 400_000 in
  let rng = W.Rng.create () in
  let rows =
    Array.init nrows (fun i ->
        [| Value.Int i; Value.Int (W.Rng.int rng 100);
           Value.Int (W.Rng.int rng 1000) |])
  in
  let layout = [ (0, 3) ] in
  let cref index name = Colref.make ~rel:0 ~index ~name ~dtype:Value.Tint in
  let a = cref 0 "a" and b = cref 1 "b" and c = cref 2 "c" in
  let pred =
    Expr.And
      [ Expr.lt (Expr.col b) (Expr.int 50);
        Expr.Or
          [ Expr.ge (Expr.col c) (Expr.int 100);
            Expr.eq (Expr.col a) (Expr.int 0) ] ]
  in
  let offset_of rel =
    let rec go off = function
      | [] -> invalid_arg "micro_exec: rel not in layout"
      | (r, w) :: rest -> if r = rel then off else go (off + w) rest
    in
    go 0 layout
  in
  (* the pre-overhaul contract: one env record per row, layout search per
     column reference *)
  let env_of row =
    { Expr.col =
        (fun (cr : Colref.t) -> row.(offset_of cr.Colref.rel + cr.Colref.index));
      param = (fun _ -> Value.Null) }
  in
  let interpret () =
    let n = ref 0 in
    Array.iter (fun row -> if Expr.eval_pred (env_of row) pred then incr n) rows;
    !n
  in
  let compiled =
    Expr.compile_pred
      ~resolve:(fun cr -> offset_of cr.Colref.rel + cr.Colref.index)
      ~params:[||] pred
  in
  let run_compiled () =
    let n = ref 0 in
    Array.iter (fun row -> if compiled row then incr n) rows;
    !n
  in
  let n_interp = interpret () and n_comp = run_compiled () in
  assert (n_interp = n_comp);
  let t_interp = best_of reps interpret in
  let t_comp = best_of reps run_compiled in
  let ns_per t = 1e9 *. t /. float_of_int nrows in
  let filter_speedup = t_interp /. t_comp in
  Printf.printf
    "scan-filter (%d rows, %d selected):\n\
    \  interpreted  %8.1f ns/row\n\
    \  compiled     %8.1f ns/row   (%.1fx)\n"
    nrows n_comp (ns_per t_interp) (ns_per t_comp) filter_speedup;
  (* ---- 2. serial vs domain-pool hash join on 8 segments ---- *)
  let nseg = 8 and domains = 4 in
  let catalog = Cat.create () in
  let dim =
    Cat.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let fact =
    Cat.add_table catalog ~name:"fact"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let storage = Storage.create ~nsegments:nseg in
  let ndim = if smoke then 50 else 1_000 in
  let nfact = if smoke then 2_000 else 200_000 in
  for k = 0 to ndim - 1 do
    Storage.insert storage dim
      [| Value.Int k; Value.String (if k mod 2 = 0 then "even" else "odd") |]
  done;
  for i = 0 to nfact - 1 do
    Storage.insert storage fact [| Value.Int i; Value.Int (W.Rng.int rng ndim) |]
  done;
  let dim_k = Colref.make ~rel:0 ~index:0 ~name:"k" ~dtype:Value.Tint in
  let fact_b = Colref.make ~rel:1 ~index:1 ~name:"b" ~dtype:Value.Tint in
  let join =
    Plan.motion Plan.Gather
      (Plan.hash_join ~kind:Plan.Inner
         ~pred:(Expr.eq (Expr.col dim_k) (Expr.col fact_b))
         (Plan.table_scan ~rel:0 dim.Table.oid)
         (Plan.table_scan ~rel:1 fact.Table.oid))
  in
  let run_with d =
    fst (Mpp_exec.Exec.run ~domains:d ~catalog ~storage join)
  in
  let serial_rows = run_with 1 and parallel_rows = run_with domains in
  assert (List.length serial_rows = List.length parallel_rows);
  let t_serial = best_of reps (fun () -> run_with 1) in
  let t_parallel = best_of reps (fun () -> run_with domains) in
  let join_speedup = t_serial /. t_parallel in
  Printf.printf
    "hash join (%d segments, %d fact rows, %d cores on this host):\n\
    \  serial       %8.2f ms\n\
    \  %d domains    %8.2f ms   (%.2fx)\n"
    nseg nfact cores (t_serial *. 1000.0) domains (t_parallel *. 1000.0)
    join_speedup;
  let section =
    Json.Obj
      [ ("cores", Json.Int cores);
        ("smoke", Json.Bool smoke);
        ("scan_filter",
         Json.Obj
           [ ("rows", Json.Int nrows);
             ("selected", Json.Int n_comp);
             ("interpreted_ns_per_row", Json.Float (ns_per t_interp));
             ("compiled_ns_per_row", Json.Float (ns_per t_comp));
             ("speedup", Json.Float filter_speedup) ]);
        ("parallel_join",
         Json.Obj
           [ ("nsegments", Json.Int nseg);
             ("fact_rows", Json.Int nfact);
             ("serial_ms", Json.Float (t_serial *. 1000.0));
             ("parallel_ms", Json.Float (t_parallel *. 1000.0));
             ("domains", Json.Int domains);
             ("speedup", Json.Float join_speedup) ]) ]
  in
  record "micro_exec" section;
  if smoke then begin
    (* schema assertions only — values must exist and be measurements, no
       performance thresholds *)
    let field obj name =
      match obj with
      | Json.Obj fields -> (
          match List.assoc_opt name fields with
          | Some v -> v
          | None -> failwith ("micro_exec smoke: missing field " ^ name))
      | _ -> failwith "micro_exec smoke: section is not an object"
    in
    let measured = function
      | Json.Float f -> f > 0.0 && Float.is_finite f
      | _ -> false
    in
    let sf = field section "scan_filter" and pj = field section "parallel_join" in
    assert (measured (field sf "interpreted_ns_per_row"));
    assert (measured (field sf "compiled_ns_per_row"));
    assert (measured (field sf "speedup"));
    assert (measured (field pj "serial_ms"));
    assert (measured (field pj "parallel_ms"));
    assert (match field section "cores" with Json.Int n -> n >= 1 | _ -> false);
    print_endline
      "smoke OK: micro_exec schema valid; interpreted and compiled paths both \
       measured"
  end

(* ------------------------------------------------------------------ *)
(* Partition-count scaling of selection (paper Fig. 14 shape)           *)
(* ------------------------------------------------------------------ *)

(* The index layer's claim, measured directly: selection cost must stay
   near-flat as the partition count P grows into the tens of thousands,
   where the legacy implementation (a scan of every leaf, plus an O(P)
   sibling rescan per default-arm check) grows linearly.  Four cases per P:

   - static:      a range restriction selecting ~P/8 leaves — the leaf
                  selector of Figure 5(a-c), once per query;
   - point:       a single-value restriction — one leaf survives;
   - streaming:   point restrictions cycling over distinct join keys — the
                  per-memo-key resolution of the DPE path (Figure 5(d));
   - default-arm: a range restriction on a layout with a Default partition,
                  forcing the covered-set check on every select.

   Each case times the legacy oracle against the indexed implementation
   (same restriction arrays, ns/select) and asserts they agree oid-for-oid
   before timing.  [~smoke] runs tiny P values and checks only the JSON
   schema, so it is safe under [dune runtest]. *)

let make_part ?(default_arm = false) ~nparts () =
  let next = ref 0 in
  let alloc_oid () =
    incr next;
    !next
  in
  let constrs =
    if default_arm then
      Part.int_ranges ~start:0 ~width:100 ~count:(nparts - 1)
      @ [ Part.Default ]
    else Part.int_ranges ~start:0 ~width:100 ~count:nparts
  in
  Part.single_level ~alloc_oid ~key_index:0 ~key_name:"b" ~scheme:Part.Range
    ~table_name:"t" constrs

let part_select ?(smoke = false) () =
  header
    (if smoke then "Bench: partition-selection scaling (smoke mode, tiny P)"
     else "Bench: partition-selection scaling, legacy scan vs index");
  let min_time = if smoke then 0.002 else 0.05 in
  (* adaptive repetition: grow the batch until it runs long enough to
     swamp timer resolution, then report ns per call *)
  let ns_per_op f =
    ignore (f ());
    (* warm-up *)
    let rec go reps =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore (f ())
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt >= min_time then 1e9 *. dt /. float_of_int reps else go (reps * 4)
    in
    go 1
  in
  let ps = if smoke then [ 16; 64 ] else [ 16; 128; 1024; 8192; 32768 ] in
  Printf.printf "%-8s %-12s %14s %14s %10s\n" "P" "case" "legacy ns"
    "indexed ns" "speedup";
  let static_speedup_8k = ref None in
  let points =
    List.map
      (fun nparts ->
        let p = make_part ~nparts () in
        let pd = make_part ~default_arm:true ~nparts () in
        let build_s, ix = time_run (fun () -> Part.Index.build p) in
        let ixd = Part.Index.of_partitioning pd in
        let domain = nparts * 100 in
        let rset i = Interval.Set.of_interval_opt i in
        (* ~P/8 surviving leaves, mid-domain *)
        let static_r =
          let iv =
            Interval.closed_open
              (Value.Int (domain / 2))
              (Value.Int ((domain / 2) + (domain / 8)))
          in
          [| Some (rset iv) |]
        in
        let point_r =
          [| Some (Interval.Set.point (Value.Int ((domain / 2) + 50))) |]
        in
        (* distinct join-key tuples of the streaming-DPE path: one select
           per memoized key, keys cycling round-robin *)
        let nkeys = if smoke then 16 else 256 in
        let rng = W.Rng.create () in
        let stream_rs =
          Array.init nkeys (fun _ ->
              [| Some (Interval.Set.point (Value.Int (W.Rng.int rng domain)))
              |])
        in
        let stream_i = ref 0 in
        let next_stream () =
          let r = stream_rs.(!stream_i) in
          stream_i := (!stream_i + 1) mod nkeys;
          r
        in
        (* reaches into the last range leaves and the default arm *)
        let default_r =
          [| Some (rset (Interval.closed_open
                           (Value.Int (domain - 250))
                           (Value.Int (domain + 250))))
          |]
        in
        let case name part ix restriction =
          (match restriction with
          | Some r ->
              (* the oracle contract, checked before timing *)
              assert (Part.Index.select_oids ix r = Part.select_oids_legacy part r)
          | None ->
              Array.iter
                (fun r ->
                  assert (
                    Part.Index.select_oids ix r
                    = Part.select_oids_legacy part r))
                stream_rs);
          let arg () =
            match restriction with Some r -> r | None -> next_stream ()
          in
          let legacy = ns_per_op (fun () -> Part.select_oids_legacy part (arg ()))
          and indexed = ns_per_op (fun () -> Part.Index.select_oids ix (arg ())) in
          let speedup = legacy /. indexed in
          Printf.printf "%-8d %-12s %14.0f %14.0f %9.1fx\n" nparts name legacy
            indexed speedup;
          if name = "static" && nparts = 8192 then
            static_speedup_8k := Some speedup;
          ( name,
            Json.Obj
              [ ("legacy_ns", Json.Float legacy);
                ("indexed_ns", Json.Float indexed);
                ("speedup", Json.Float speedup) ] )
        in
        (* force left-to-right evaluation so the table prints in order *)
        let c_static = case "static" p ix (Some static_r) in
        let c_point = case "point" p ix (Some point_r) in
        let c_stream = case "streaming" p ix None in
        let c_default = case "default-arm" pd ixd (Some default_r) in
        let cases = [ c_static; c_point; c_stream; c_default ] in
        Json.Obj
          [ ("nparts", Json.Int nparts);
            ("index_build_ms", Json.Float (build_s *. 1000.0));
            ("cases", Json.Obj cases) ])
      ps
  in
  let section =
    Json.Obj
      ([ ("smoke", Json.Bool smoke); ("points", Json.List points) ]
      @
      match !static_speedup_8k with
      | Some s -> [ ("static_speedup_at_8k", Json.Float s) ]
      | None -> [])
  in
  record "part_select" section;
  (match !static_speedup_8k with
  | Some s ->
      Printf.printf
        "\nstatic case at P=8192: indexed selection %.1fx faster than the \
         legacy scan (target: >= 10x)\n"
        s
  | None -> ());
  if smoke then begin
    let field obj name =
      match obj with
      | Json.Obj fields -> (
          match List.assoc_opt name fields with
          | Some v -> v
          | None -> failwith ("part_select smoke: missing field " ^ name))
      | _ -> failwith "part_select smoke: not an object"
    in
    let measured = function
      | Json.Float f -> f > 0.0 && Float.is_finite f
      | _ -> false
    in
    (match field section "points" with
    | Json.List (_ :: _ as pts) ->
        List.iter
          (fun pt ->
            assert (measured (field pt "index_build_ms"));
            match field pt "cases" with
            | Json.Obj cases ->
                assert (
                  List.map fst cases
                  = [ "static"; "point"; "streaming"; "default-arm" ]);
                List.iter
                  (fun (_, c) ->
                    assert (measured (field c "legacy_ns"));
                    assert (measured (field c "indexed_ns"));
                    assert (measured (field c "speedup")))
                  cases
            | _ -> failwith "part_select smoke: cases not an object")
          pts
    | _ -> failwith "part_select smoke: points missing or empty");
    print_endline
      "smoke OK: part_select schema valid; legacy and indexed selection both \
       measured and agree oid-for-oid"
  end

(* ------------------------------------------------------------------ *)
(* Observability overhead                                               *)
(* ------------------------------------------------------------------ *)

(* The instrumentation contract of lib/obs: with the null sink installed
   every recording site is one flag test, so tracing must be effectively
   free when off.  Measured three ways: end-to-end runtime with the sink
   disabled vs enabled, the per-event cost of a disabled-sink recording
   site, and that cost extrapolated over the events one query emits. *)
let obs_overhead () =
  header "Micro: observability overhead (disabled sink vs enabled)";
  let env = get_env () in
  let qu = List.hd W.Queries.all in
  let measure () =
    let batch () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 10 do
        ignore (W.Runner.run env W.Runner.Orca qu)
      done;
      (Unix.gettimeofday () -. t0) /. 10.0
    in
    ignore (batch ());
    median (List.init 7 (fun _ -> batch ()))
  in
  Obs.uninstall ();
  let disabled = measure () in
  let sink = Obs.create () in
  Obs.install sink;
  (* events a single optimize+run of this query emits *)
  ignore (W.Runner.run env W.Runner.Orca qu);
  let events_per_query =
    List.fold_left (fun acc (_, v) -> acc + v) 0 (Obs.counters sink)
  in
  Obs.reset sink;
  let enabled = measure () in
  Obs.uninstall ();
  (* per-event cost of a recording site hitting the disabled sink *)
  let n = 20_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Obs.incr Obs.null "bench.noop"
  done;
  let per_event = (Unix.gettimeofday () -. t0) /. float_of_int n in
  let disabled_pct =
    100.0 *. per_event *. float_of_int events_per_query /. disabled
  in
  let enabled_pct = 100.0 *. ((enabled /. disabled) -. 1.0) in
  Printf.printf "query: %s\n" qu.W.Queries.name;
  Printf.printf "disabled sink:      %.3f ms/query\n" (disabled *. 1000.0);
  Printf.printf "enabled sink:       %.3f ms/query (%+.1f%%)\n"
    (enabled *. 1000.0) enabled_pct;
  Printf.printf "disabled-site cost: %.2f ns/event x %d events/query = \
                 %.3f%% of runtime (budget: 2%%)\n"
    (per_event *. 1e9) events_per_query disabled_pct;
  Printf.printf "disabled-sink overhead within budget: %b\n"
    (disabled_pct <= 2.0);
  record "obs_overhead"
    (Json.Obj
       [ ("query", Json.String qu.W.Queries.name);
         ("disabled_ms", Json.Float (disabled *. 1000.0));
         ("enabled_ms", Json.Float (enabled *. 1000.0));
         ("enabled_overhead_pct", Json.Float enabled_pct);
         ("disabled_ns_per_event", Json.Float (per_event *. 1e9));
         ("events_per_query", Json.Int events_per_query);
         ("disabled_overhead_pct", Json.Float disabled_pct);
         ("within_budget", Json.Bool (disabled_pct <= 2.0)) ])

(* ------------------------------------------------------------------ *)
(* Verifier overhead                                                    *)
(* ------------------------------------------------------------------ *)

(* The always-on contract of lib/verify: both optimizers run every plan
   through the four static-analysis passes before handing it out, so the
   passes must cost a negligible slice of optimization itself.  Two
   measurements: (a) aggregate verify time vs optimize time over the whole
   evaluation workload, per optimizer (budget: <1%); (b) verify time vs
   plan size on the legacy Planner's per-leaf Append expansions at the
   paper's TPC-H partition counts, which should scale linearly (the
   structure pass's endpoint matching is the part that would go quadratic
   if regressed).  [~smoke] runs tiny inputs and asserts only the JSON
   schema and the oid-level agreement already enforced elsewhere. *)
let bench_verify ?(smoke = false) () =
  header
    (if smoke then "Bench: plan-verifier overhead (smoke mode, tiny inputs)"
     else "Bench: plan-verifier overhead (six passes vs optimize time)");
  let env = get_env () in
  let catalog = env.W.Runner.catalog in
  let reps = if smoke then 3 else 11 in
  let med f =
    ignore (f ());
    median
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           ignore (f ());
           Unix.gettimeofday () -. t0))
  in
  (* (a) workload aggregate, per optimizer.  Both optimizers run the
     verifier on every plan they emit, so the measured optimize time
     already contains one embedded verify; [raw] subtracts it back out to
     give the verifier's share of a pure optimization pass.  The
     end-to-end column adds execution — the denominator a query actually
     experiences. *)
  let queries = if smoke then [ List.hd W.Queries.all ] else W.Queries.all in
  let e2e_reps = if smoke then 1 else 3 in
  let med_of reps f =
    ignore (f ());
    median
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           ignore (f ());
           Unix.gettimeofday () -. t0))
  in
  let kind_section kind =
    let opt_ms = ref 0.0 and ver_ms = ref 0.0 in
    let plans = ref 0 and nodes = ref 0 in
    List.iter
      (fun qu ->
        let plan = W.Runner.optimize_with env kind qu in
        let t_opt = med (fun () -> W.Runner.optimize_with env kind qu) in
        let t_ver = med (fun () -> Mpp_verify.Verify.check ~catalog plan) in
        opt_ms := !opt_ms +. (t_opt *. 1000.0);
        ver_ms := !ver_ms +. (t_ver *. 1000.0);
        incr plans;
        nodes := !nodes + Plan.node_count plan)
      queries;
    let raw_ms = Float.max (!opt_ms -. !ver_ms) 1e-9 in
    let pct = 100.0 *. !ver_ms /. raw_ms in
    let e2e_ms =
      1000.0
      *. med_of e2e_reps (fun () ->
             List.iter (fun qu -> ignore (W.Runner.run env kind qu)) queries)
    in
    let pct_e2e = 100.0 *. !ver_ms /. e2e_ms in
    Printf.printf
      "%-8s optimize %9.3f ms   verify %8.4f ms   %6.2f%% of optimize   \
       %5.3f%% of end-to-end %9.1f ms   (%d plans, %d nodes)\n"
      (W.Runner.optimizer_kind_to_string kind)
      raw_ms !ver_ms pct pct_e2e e2e_ms !plans !nodes;
    Json.Obj
      [ ("optimize_ms", Json.Float raw_ms);
        ("verify_ms", Json.Float !ver_ms);
        ("overhead_pct", Json.Float pct);
        ("e2e_ms", Json.Float e2e_ms);
        ("overhead_pct_e2e", Json.Float pct_e2e);
        ("plans", Json.Int !plans);
        ("nodes", Json.Int !nodes);
        ("within_budget", Json.Bool (pct <= 1.0));
        ("within_budget_e2e", Json.Bool (pct_e2e <= 1.0)) ]
  in
  let orca_section = kind_section W.Runner.Orca in
  let planner_section = kind_section W.Runner.Legacy_planner in
  (* (b) verify time vs plan size: Planner Append expansions over the
     TPC-H lineitem scenarios (everything survives the filter, so the
     Append carries all P leaves) *)
  let scaling_point scenario =
    let catalog = Cat.create () in
    let storage = Storage.create ~nsegments:4 in
    let _ =
      W.Tpch.setup ~catalog ~storage ~scenario
        ~rows:(if smoke then 200 else 2_000)
    in
    let logical =
      Mpp_sql.Sql.to_logical catalog
        "SELECT count(*) FROM lineitem WHERE l_shipdate >= '1992-01-01'"
    in
    let plan =
      Mpp_planner.Planner.plan (Mpp_planner.Planner.create ~catalog ()) logical
    in
    let nodes = Plan.node_count plan in
    let t = med (fun () -> Mpp_verify.Verify.check ~catalog plan) in
    let us = t *. 1e6 in
    Printf.printf
      "P=%5d  %5d nodes   verify %9.1f us   %6.2f us/node\n"
      (W.Tpch.scenario_parts scenario)
      nodes us
      (us /. float_of_int nodes);
    Json.Obj
      [ ("parts", Json.Int (W.Tpch.scenario_parts scenario));
        ("nodes", Json.Int nodes);
        ("verify_us", Json.Float us);
        ("us_per_node", Json.Float (us /. float_of_int nodes)) ]
  in
  let scenarios =
    if smoke then [ W.Tpch.Parts_42 ]
    else [ W.Tpch.Parts_42; W.Tpch.Parts_84; W.Tpch.Parts_169;
           W.Tpch.Parts_361 ]
  in
  let points = List.map scaling_point scenarios in
  let section =
    Json.Obj
      [ ("smoke", Json.Bool smoke);
        ("note",
         Json.String
           "overhead_pct compares one verify against a pure in-process \
            optimization pass (microseconds per plan here; both are O(plan \
            size), so the ratio is scale-invariant).  Against paper-scale \
            optimize times (Orca spends 100ms-10s per TPC-DS query) the \
            verifier's ~0.6us/node (six passes) is far below the 1% \
            budget; \
            overhead_pct_e2e records the share of optimize+execute in this \
            harness.  us_per_node staying flat across the scaling sweep is \
            the O(plan size) claim.");
        ("workload",
         Json.Obj [ ("orca", orca_section); ("planner", planner_section) ]);
        ("scaling", Json.List points) ]
  in
  record "verify" section;
  if smoke then begin
    (* schema check only: the numbers are meaningless at tiny inputs *)
    let field name = function
      | Json.Obj fields -> (
          match List.assoc_opt name fields with
          | Some v -> v
          | None -> failwith ("bench_verify smoke: missing field " ^ name))
      | _ -> failwith "bench_verify smoke: section is not an object"
    in
    let workload = field "workload" section in
    List.iter
      (fun k ->
        match field "overhead_pct" (field k workload) with
        | Json.Float _ -> ()
        | _ -> failwith ("bench_verify smoke: " ^ k ^ " overhead not a float"))
      [ "orca"; "planner" ];
    (match field "scaling" section with
    | Json.List (_ :: _) -> ()
    | _ -> failwith "bench_verify smoke: scaling points missing");
    print_endline
      "smoke OK: verify schema valid; both optimizers measured and the \
       scaling sweep ran"
  end

(* ------------------------------------------------------------------ *)
(* Runtime join filters                                                 *)
(* ------------------------------------------------------------------ *)

(* The runtime-join-filter claims, measured two ways:

   1. workload speedup: the RF-target workload queries (a selective
      dimension joined to a fact on a non-partition key — nothing for
      partition selection to do, everything for a Bloom filter) executed
      with the same Orca plan under [runtime_filters:true] vs [false].
      The plan is byte-identical across the two configurations; only the
      executor knob changes, so the delta is purely the filters' effect.

   2. Motion-row reduction: a hand-built redistribute-probe join (fact
      hashed on a non-join column, so every probe row must cross a
      Redistribute) with the consumer annotated [at_motion] below the
      send — the placement where dropped rows never pay Motion cost.
      [tuples_moved] with filters off vs on gives the reduction
      deterministically, no timing involved.

   Correctness is asserted inline before anything is timed: identical row
   multisets on vs off, zero filter counters when off, and the
   filtered scanned-OID set a subset of the unfiltered one per root (the
   min-max partition pruning may only shrink the scan set).  [~smoke]
   runs the same assertions at tiny scale under [dune runtest]. *)
let join_filter ?(smoke = false) () =
  header
    (if smoke then "Bench: runtime join filters (smoke mode, tiny scale)"
     else "Bench: runtime join filters (Bloom + min-max), on vs off");
  let scale = if smoke then 1 else 64 in
  let env = W.Runner.setup_env ~scale () in
  let catalog = env.W.Runner.catalog and storage = env.W.Runner.storage in
  let reps = if smoke then 1 else 15 in
  (* Paired measurement: both configurations are timed within the same
     rep, alternating which goes first, with a major collection before
     every timed run — so slow drift of the machine and GC debt left by
     the previous run land on both sides evenly instead of penalizing
     whichever configuration happens to run later. *)
  let med_ms_pair f_a f_b =
    ignore (f_a ());
    ignore (f_b ());
    let ta = ref [] and tb = ref [] in
    for i = 1 to reps do
      let timed f =
        Gc.major ();
        fst (time_run f)
      in
      if i land 1 = 0 then begin
        ta := timed f_a :: !ta;
        tb := timed f_b :: !tb
      end
      else begin
        tb := timed f_b :: !tb;
        ta := timed f_a :: !ta
      end
    done;
    (1000.0 *. median !ta, 1000.0 *. median !tb)
  in
  let sorted_rows rows = List.sort compare rows in
  let is_subset a b = List.for_all (fun x -> List.mem x b) a in
  (* ---- 1. workload queries, filters on vs off ---- *)
  let target_names =
    [ "ss_customer_rf_scan"; "ws_customer_rf_scan"; "ss_star_rf_year";
      "ss_star_may" ]
  in
  let queries =
    List.filter
      (fun (qu : W.Queries.query) -> List.mem qu.W.Queries.name target_names)
      W.Queries.all
  in
  Printf.printf "%-22s %-10s %-10s %-9s %-13s %-7s\n" "query" "off (ms)"
    "on (ms)" "speedup" "dropped@scan" "built";
  let best_speedup = ref ("", 0.0) in
  let qsections =
    List.map
      (fun (qu : W.Queries.query) ->
        let plan = W.Runner.optimize_with env W.Runner.Orca qu in
        let exec rf =
          Mpp_exec.Exec.run ~runtime_filters:rf ~catalog ~storage plan
        in
        let rows_on, m_on = exec true in
        let rows_off, m_off = exec false in
        (* the filters are semantic no-ops *)
        assert (sorted_rows rows_on = sorted_rows rows_off);
        (* the off configuration does no filter work at all *)
        assert (
          m_off.Mpp_exec.Metrics.filter_built = 0
          && m_off.Mpp_exec.Metrics.rows_filtered_scan = 0
          && m_off.Mpp_exec.Metrics.rows_filtered_motion = 0
          && m_off.Mpp_exec.Metrics.motion_rows_saved = 0);
        (* min-max partition elimination only ever shrinks the scan set *)
        List.iter
          (fun root ->
            assert (
              is_subset
                (Mpp_exec.Metrics.scanned_oids m_on ~root_oid:root)
                (Mpp_exec.Metrics.scanned_oids m_off ~root_oid:root)))
          (Mpp_exec.Metrics.roots_scanned m_on);
        let off_ms, on_ms =
          med_ms_pair (fun () -> exec false) (fun () -> exec true)
        in
        let speedup = off_ms /. on_ms in
        if speedup > snd !best_speedup then
          best_speedup := (qu.W.Queries.name, speedup);
        Printf.printf "%-22s %-10.2f %-10.2f %8.2fx %-13d %-7d\n"
          qu.W.Queries.name off_ms on_ms speedup
          m_on.Mpp_exec.Metrics.rows_filtered_scan
          m_on.Mpp_exec.Metrics.filter_built;
        ( qu.W.Queries.name,
          Json.Obj
            [ ("off_ms", Json.Float off_ms);
              ("on_ms", Json.Float on_ms);
              ("speedup", Json.Float speedup);
              ("filter_built", Json.Int m_on.Mpp_exec.Metrics.filter_built);
              ("rows_filtered_scan",
               Json.Int m_on.Mpp_exec.Metrics.rows_filtered_scan);
              (* no [motion_rows_saved] here: the workload queries carry no
                 at_motion filter placements, so the per-query counter was
                 always zero — the real signal lives in the [motion] section
                 below *)
              ("rows_filtered_motion",
               Json.Int m_on.Mpp_exec.Metrics.rows_filtered_motion) ] ))
      queries
  in
  (* ---- 2. Motion-row reduction on a redistribute-probe join ---- *)
  let nseg = 4 in
  let mcat = Cat.create () in
  let dim =
    Cat.add_table mcat ~name:"jf_dim"
      ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let fact =
    Cat.add_table mcat ~name:"jf_fact"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let mstore = Storage.create ~nsegments:nseg in
  let ndim = if smoke then 64 else 2_000 in
  let nfact = if smoke then 1_000 else 100_000 in
  let rng = W.Rng.create () in
  for k = 0 to ndim - 1 do
    Storage.insert mstore dim
      [| Value.Int k;
         Value.String (if k mod 8 = 0 then "keep" else "drop") |]
  done;
  for i = 0 to nfact - 1 do
    Storage.insert mstore fact [| Value.Int i; Value.Int (W.Rng.int rng ndim) |]
  done;
  let dim_k = Table.colref dim ~rel:0 "k" in
  let dim_s = Table.colref dim ~rel:0 "s" in
  let fact_b = Table.colref fact ~rel:1 "b" in
  (* fact is hashed on [a] but joins on [b]: every surviving probe row must
     cross the Redistribute, so the at_motion consumer placement is the one
     that saves Motion sends *)
  let mplan =
    Plan.motion Plan.Gather
      (Plan.hash_join ~kind:Plan.Inner
         ~pred:(Expr.eq (Expr.col dim_k) (Expr.col fact_b))
         (Plan.runtime_filter_build ~rf_id:1 ~keys:[ dim_k ]
            ~rows_est:(ndim / 8)
            (Plan.table_scan ~rel:0
               ~filter:(Expr.eq (Expr.col dim_s) (Expr.str "keep"))
               dim.Table.oid))
         (Plan.motion
            (Plan.Redistribute [ fact_b ])
            (Plan.runtime_filter ~at_motion:true ~rf_id:1 ~keys:[ fact_b ]
               (Plan.table_scan ~rel:1 fact.Table.oid))))
  in
  assert (not (Mpp_verify.Diag.has_errors (Mpp_verify.Verify.check ~catalog:mcat mplan)));
  let mexec rf =
    Mpp_exec.Exec.run ~runtime_filters:rf ~catalog:mcat ~storage:mstore mplan
  in
  let mrows_on, mm_on = mexec true in
  let mrows_off, mm_off = mexec false in
  assert (sorted_rows mrows_on = sorted_rows mrows_off);
  let moved_off = mm_off.Mpp_exec.Metrics.tuples_moved
  and moved_on = mm_on.Mpp_exec.Metrics.tuples_moved in
  assert (moved_on <= moved_off);
  let reduction =
    100.0 *. float_of_int (moved_off - moved_on) /. float_of_int moved_off
  in
  Printf.printf
    "\nredistribute-probe join (%d fact rows, 1-in-8 build side):\n\
    \  tuples moved: off=%d  on=%d  (-%.1f%%); rows dropped pre-Motion=%d, \
     Motion sends saved=%d\n"
    nfact moved_off moved_on reduction
    mm_on.Mpp_exec.Metrics.rows_filtered_motion
    mm_on.Mpp_exec.Metrics.motion_rows_saved;
  let bq, bs = !best_speedup in
  Printf.printf
    "\nacceptance: best workload speedup %.2fx on %s (target >= 1.2x) OR \
     Motion-row reduction %.1f%% (target >= 30%%)\n"
    bs bq reduction;
  let section =
    Json.Obj
      [ ("smoke", Json.Bool smoke);
        ("scale", Json.Int scale);
        ("queries", Json.Obj qsections);
        ("best_speedup_query", Json.String bq);
        ("best_speedup", Json.Float bs);
        ("motion",
         Json.Obj
           [ ("fact_rows", Json.Int nfact);
             ("moved_off", Json.Int moved_off);
             ("moved_on", Json.Int moved_on);
             ("reduction_pct", Json.Float reduction);
             ("rows_filtered_motion",
              Json.Int mm_on.Mpp_exec.Metrics.rows_filtered_motion);
             ("motion_rows_saved",
              Json.Int mm_on.Mpp_exec.Metrics.motion_rows_saved) ]) ]
  in
  record "join_filter" section;
  if smoke then
    print_endline
      "smoke OK: join_filter results identical on/off, off-config counters \
       zero, filtered scan sets subsets, Motion volume non-increasing"

(* ------------------------------------------------------------------ *)
(* Profiler overhead: table2 scan suite with the profiler off vs on     *)
(* ------------------------------------------------------------------ *)

(* The PR-6 profiler promises to be free when off.  The disabled path is
   the default path (null trace, no stats, accounting flag false), so the
   measurable upper bound on its cost is the cheapest *enabled* layer:
   pool accounting on, stats and trace still off.  Three configurations
   over the Table-2 scan (lineitem, 42 parts):

     plain      — profiler fully off (what every non-profiled query runs)
     accounting — Dpool busy/wait accounting on, stats/trace off
     profile    — Node_stats + Perfetto trace + accounting (mppsim profile)

   [~smoke] asserts accounting-vs-plain stays under 2% (with a 0.05 ms
   absolute floor so µs-level timer noise cannot flake the suite) and
   that the Perfetto export round-trips through our own JSON parser with
   monotone timestamps and a named track per pool domain. *)
let bench_profile ?(smoke = false) () =
  header
    (if smoke then "Bench: profiler overhead (smoke mode)"
     else "Bench: profiler overhead on the Table-2 scan suite");
  let rows = if smoke then 150_000 else 500_000 in
  Gc.compact ();
  let catalog = Cat.create () in
  let storage = Storage.create ~nsegments:4 in
  let _ = W.Tpch.setup ~catalog ~storage ~scenario:W.Tpch.Parts_42 ~rows in
  let lg = Mpp_sql.Sql.to_logical catalog "SELECT count(*) FROM lineitem" in
  let plan =
    Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg
  in
  let pool = Mpp_exec.Dpool.get ~domains:(Mpp_exec.Dpool.default_domains ()) in
  let run_plain () = ignore (Mpp_exec.Exec.run ~catalog ~storage plan) in
  let with_accounting f =
    Mpp_exec.Dpool.set_accounting pool true;
    Fun.protect
      ~finally:(fun () -> Mpp_exec.Dpool.set_accounting pool false)
      f
  in
  let run_accounting () = with_accounting run_plain in
  let run_profile () =
    with_accounting (fun () ->
        let stats = Mpp_exec.Node_stats.create () in
        let trace = Mpp_obs.Trace.create () in
        ignore (Mpp_exec.Exec.run ~stats ~trace ~catalog ~storage plan))
  in
  let reps = if smoke then 13 else 21 in
  (* paired alternating runs (same discipline as join_filter): drift and
     GC debt land on both configurations evenly.  Median for reporting;
     minimum for the smoke gate — the suite runs concurrently with the
     other smoke benches under [dune runtest], and scheduler contention
     only ever *adds* time, so the paired minima are the contention-robust
     estimate of the true cost difference. *)
  let times_pair f_a f_b =
    ignore (f_a ());
    ignore (f_b ());
    let ta = ref [] and tb = ref [] in
    for i = 1 to reps do
      let timed f =
        Gc.major ();
        fst (time_run f)
      in
      if i land 1 = 0 then begin
        ta := timed f_a :: !ta;
        tb := timed f_b :: !tb
      end
      else begin
        tb := timed f_b :: !tb;
        ta := timed f_a :: !ta
      end
    done;
    (!ta, !tb)
  in
  let ms = List.map (fun t -> 1000.0 *. t) in
  let minimum l = List.fold_left Float.min infinity l in
  let ta, tb = times_pair run_plain run_accounting in
  let ta', tc = times_pair run_plain run_profile in
  let plain_ms = Float.min (median (ms ta)) (median (ms ta'))
  and acct_ms = median (ms tb)
  and prof_ms = median (ms tc) in
  let plain_min = Float.min (minimum (ms ta)) (minimum (ms ta'))
  and acct_min = minimum (ms tb) in
  let pct over base = 100.0 *. (over -. base) /. base in
  Printf.printf
    "%-34s %10.2f ms\n%-34s %10.2f ms  (%+.2f%%)\n%-34s %10.2f ms  (%+.2f%%)\n"
    "profiler off (default path)" plain_ms "pool accounting on" acct_ms
    (pct acct_ms plain_ms) "full profile (stats+trace+acct)" prof_ms
    (pct prof_ms plain_ms);
  (* one fully profiled run for the export round-trip check *)
  let stats = Mpp_exec.Node_stats.create () in
  let trace = Mpp_obs.Trace.create () in
  ignore
    (with_accounting (fun () ->
         Mpp_exec.Exec.run ~stats ~trace ~catalog ~storage plan));
  let exported = Json.to_string (Mpp_obs.Trace.to_json trace) in
  let roundtrip = Json.parse exported in
  let events =
    match Json.member "traceEvents" roundtrip with
    | Some (Json.List evs) -> evs
    | _ -> failwith "profile: traceEvents missing from exported trace"
  in
  let num = function
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> nan
  in
  let xs =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.String "X"))
      events
  in
  let rec monotone prev = function
    | [] -> true
    | e :: tl ->
        let ts = num (Json.member "ts" e) in
        ts >= prev && monotone ts tl
  in
  if not (monotone 0.0 xs) then
    failwith "profile: exported trace timestamps not monotone";
  let thread_names =
    List.filter
      (fun e -> Json.member "name" e = Some (Json.String "thread_name"))
      events
  in
  (* coordinator track + one per pool domain *)
  let expect_tracks = 1 + Mpp_exec.Dpool.size pool in
  if List.length thread_names <> expect_tracks then
    failwith
      (Printf.sprintf "profile: expected %d named tracks, trace has %d"
         expect_tracks
         (List.length thread_names));
  record "profile"
    (Json.Obj
       [ ("smoke", Json.Bool smoke);
         ("rows", Json.Int rows);
         ("reps", Json.Int reps);
         ("plain_ms", Json.Float plain_ms);
         ("accounting_ms", Json.Float acct_ms);
         ("profile_ms", Json.Float prof_ms);
         ("accounting_overhead_pct", Json.Float (pct acct_ms plain_ms));
         ("full_profile_overhead_pct", Json.Float (pct prof_ms plain_ms));
         ("trace_events", Json.Int (List.length xs));
         ("trace_tracks", Json.Int expect_tracks) ]);
  if smoke then begin
    let tol_ms = Float.max (0.02 *. plain_min) 0.05 in
    if acct_min -. plain_min > tol_ms then
      failwith
        (Printf.sprintf
           "profile smoke: disabled-profiler overhead %.3f ms over %.3f ms \
            exceeds 2%% budget (tolerance %.3f ms)"
           (acct_min -. plain_min) plain_min tol_ms);
    print_endline
      "smoke OK: disabled-profiler overhead within the 2% budget; Perfetto \
       export round-trips with monotone timestamps and a named track per \
       domain"
  end

(* ------------------------------------------------------------------ *)
(* Optimize-time scaling: big-join graphs, serial vs parallel search    *)
(* ------------------------------------------------------------------ *)

(* How optimize time grows with relation count on generated star/chain/
   clique graphs, and what the domain pool buys at a fixed size: the same
   20-relation graphs optimized at 1/2/4 domains, asserting along the way
   that every domain count picks the *identical* plan (the determinism
   contract the test suite also pins).  Records a [cores] field — on a
   single-core host the parallel path degenerates to the serial loop and
   speedup ~1.0 by construction; the numbers are honest either way.
   [~smoke] runs tiny graphs and checks the schema + the equality
   invariant only. *)
let opt_scaling ?(smoke = false) () =
  header
    (if smoke then "Bench: optimize-time scaling (smoke mode, tiny graphs)"
     else "Bench: optimize-time scaling on big-join graphs");
  let shapes =
    [ (W.Biggen.Star, "star"); (W.Biggen.Chain, "chain");
      (W.Biggen.Clique, "clique") ]
  in
  let sizes = if smoke then [ 5; 8 ] else [ 5; 10; 20; 30 ] in
  let scale_rels = if smoke then 8 else 20 in
  let reps = if smoke then 1 else 5 in
  let optimize_once benv ~domains =
    let config =
      { Orca.Optimizer.default_config with opt_domains = domains }
    in
    let opt =
      Orca.Optimizer.create ~config ~stats:benv.W.Biggen.stats
        ~catalog:benv.W.Biggen.catalog ()
    in
    Orca.Optimizer.optimize opt benv.W.Biggen.logical
  in
  let timed benv ~domains =
    ignore (optimize_once benv ~domains) (* warm stats caches *);
    let ts =
      List.init reps (fun _ ->
          fst (time_run (fun () -> optimize_once benv ~domains)))
    in
    median ts *. 1000.0
  in
  Printf.printf "%-10s %8s %14s\n" "shape" "#rels" "optimize (ms)";
  let points =
    List.concat_map
      (fun (shape, sname) ->
        List.map
          (fun nrels ->
            let benv = W.Biggen.generate { W.Biggen.shape; nrels; seed = 1 } in
            let ms = timed benv ~domains:1 in
            Printf.printf "%-10s %8d %14.2f\n" sname nrels ms;
            Json.Obj
              [ ("shape", Json.String sname);
                ("nrels", Json.Int nrels);
                ("optimize_ms", Json.Float ms) ])
          sizes)
      shapes
  in
  (* speedup vs domain count at a fixed graph size, with the equality
     invariant asserted on every measured plan *)
  Printf.printf "\n%-10s %8s %14s %9s %11s\n" "shape" "domains"
    "optimize (ms)" "speedup" "plan equal";
  let equal_everywhere = ref true in
  let scaling =
    List.concat_map
      (fun (shape, sname) ->
        let benv =
          W.Biggen.generate { W.Biggen.shape; nrels = scale_rels; seed = 1 }
        in
        let serial_plan = Plan.to_string (optimize_once benv ~domains:1) in
        let serial_ms = ref nan in
        List.map
          (fun domains ->
            let ms = timed benv ~domains in
            if domains = 1 then serial_ms := ms;
            let eq =
              Plan.to_string (optimize_once benv ~domains) = serial_plan
            in
            if not eq then equal_everywhere := false;
            let speedup = !serial_ms /. ms in
            Printf.printf "%-10s %8d %14.2f %8.2fx %11s\n" sname domains ms
              speedup
              (if eq then "yes" else "NO");
            Json.Obj
              [ ("shape", Json.String sname);
                ("nrels", Json.Int scale_rels);
                ("domains", Json.Int domains);
                ("optimize_ms", Json.Float ms);
                ("speedup", Json.Float speedup);
                ("plan_equal", Json.Bool eq) ])
          [ 1; 2; 4 ])
      shapes
  in
  if not !equal_everywhere then
    failwith "opt_scaling: parallel optimization changed the chosen plan";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\nhost has %d recommended domain(s)%s\n" cores
    (if cores = 1 then
       " — parallel search degenerates to the serial loop here" else "");
  record "opt_scaling"
    (Json.Obj
       [ ("smoke", Json.Bool smoke);
         ("cores", Json.Int cores);
         ("reps", Json.Int reps);
         ("points", Json.List points);
         ("scaling", Json.List scaling) ]);
  if smoke then
    print_endline
      "smoke OK: opt_scaling schema valid; every domain count picked the \
       identical plan"

(* ------------------------------------------------------------------ *)
(* Predicate analysis: pass overhead and implied-predicate pruning      *)
(* ------------------------------------------------------------------ *)

(* Two claims.  (a) Overhead: running the whole workload end to end
   (optimize + execute) with the abstract-interpretation pass on vs off,
   per optimizer, with paired medians — the always-on pass must stay
   within 2% of what a query actually experiences.  (b) Payoff:
   on [ss_sr_transitive_date] the range predicate sits on store_returns
   and only the equi-join equivalence class carries it onto the
   store_sales partition key; the strengthening pass cuts the partitions
   the Planner opens from 36 to 3 (Orca's runtime DPE already recovers
   the pruning, so its delta shows at plan time, not scan time), with
   the result rows asserted identical in every configuration.  [~smoke]
   runs assertions (b) and the JSON schema only — timing at tiny inputs
   is noise. *)
let bench_analysis ?(smoke = false) () =
  header
    (if smoke then "Bench: predicate analysis (smoke mode, equivalence only)"
     else "Bench: predicate-analysis overhead and implied-predicate pruning");
  let env = get_env () in
  let catalog = env.W.Runner.catalog in
  let optimize kind ~simplify (qu : W.Queries.query) =
    let lg = Mpp_sql.Sql.to_logical catalog qu.W.Queries.sql in
    match kind with
    | `Planner ->
        let config = { Mpp_planner.Planner.default_config with simplify } in
        Mpp_planner.Planner.plan
          (Mpp_planner.Planner.create ~config ~catalog ())
          lg
    | `Orca ->
        Mpp_stats.Stats_source.clear_row_scales env.W.Runner.stats;
        List.iter
          (fun (name, factor) ->
            let t = Cat.find catalog name in
            Mpp_stats.Stats_source.set_row_scale env.W.Runner.stats
              ~table_oid:t.Table.oid ~factor)
          qu.W.Queries.misestimates;
        let config = { Orca.Optimizer.default_config with simplify } in
        let opt =
          Orca.Optimizer.create ~config ~stats:env.W.Runner.stats ~catalog ()
        in
        let plan = Orca.Optimizer.optimize opt lg in
        Mpp_stats.Stats_source.clear_row_scales env.W.Runner.stats;
        plan
  in
  let queries = if smoke then [ List.hd W.Queries.all ] else W.Queries.all in
  let reps = if smoke then 1 else 11 in
  (* paired medians, alternating order, major collection before each
     timed run — same discipline as the join-filter benchmark *)
  let med_ms_pair f_a f_b =
    ignore (f_a ());
    ignore (f_b ());
    let ta = ref [] and tb = ref [] in
    for i = 1 to reps do
      let timed f =
        Gc.major ();
        fst (time_run f)
      in
      if i land 1 = 0 then begin
        ta := timed f_a :: !ta;
        tb := timed f_b :: !tb
      end
      else begin
        tb := timed f_b :: !tb;
        ta := timed f_a :: !ta
      end
    done;
    (1000.0 *. median !ta, 1000.0 *. median !tb)
  in
  let kind_section (kname, kind) =
    (* the gate denominator is what a query actually experiences —
       optimize + execute, like the PR 6 profiler gate; the pure-optimize
       share is recorded alongside (at this harness's microsecond plan
       times even a cheap extra walk is a double-digit share of optimize
       alone, just as the verifier's is — see the bench_verify note) *)
    let opt_on = ref 0.0 and opt_off = ref 0.0 in
    let on_ms = ref 0.0 and off_ms = ref 0.0 in
    List.iter
      (fun qu ->
        let t_opt_on, t_opt_off =
          med_ms_pair
            (fun () -> optimize kind ~simplify:true qu)
            (fun () -> optimize kind ~simplify:false qu)
        in
        opt_on := !opt_on +. t_opt_on;
        opt_off := !opt_off +. t_opt_off;
        let e2e simplify () =
          let plan = optimize kind ~simplify qu in
          ignore
            (Mpp_exec.Exec.run ~catalog ~storage:env.W.Runner.storage plan)
        in
        let t_on, t_off = med_ms_pair (e2e true) (e2e false) in
        on_ms := !on_ms +. t_on;
        off_ms := !off_ms +. t_off)
      queries;
    let pct_opt = 100.0 *. (!opt_on -. !opt_off) /. Float.max !opt_off 1e-9 in
    let pct = 100.0 *. (!on_ms -. !off_ms) /. Float.max !off_ms 1e-9 in
    Printf.printf
      "%-8s e2e %9.3f ms without analysis   %9.3f ms with   %+6.2f%%   \
       (optimize alone %+.1f%%)\n"
      kname !off_ms !on_ms pct pct_opt;
    ( kname,
      Json.Obj
        [ ("optimize_off_ms", Json.Float !opt_off);
          ("optimize_on_ms", Json.Float !opt_on);
          ("overhead_pct_optimize", Json.Float pct_opt);
          ("e2e_off_ms", Json.Float !off_ms);
          ("e2e_on_ms", Json.Float !on_ms);
          ("overhead_pct", Json.Float pct);
          ("within_budget", Json.Bool (pct <= 2.0)) ],
      (pct, !on_ms -. !off_ms) )
  in
  let kind_sections =
    List.map kind_section [ ("orca", `Orca); ("planner", `Planner) ]
  in
  (* (b) the transitive-pruning payoff, rows asserted identical *)
  let qu = W.Queries.find "ss_sr_transitive_date" in
  let ss_oid = (Cat.find catalog "store_sales").Table.oid in
  let run_parts kind simplify =
    let plan = optimize kind ~simplify qu in
    let rows, m =
      Mpp_exec.Exec.run ~catalog ~storage:env.W.Runner.storage plan
    in
    (List.sort compare rows, Mpp_exec.Metrics.parts_scanned_of m ~root_oid:ss_oid)
  in
  let rows_ref, orca_on = run_parts `Orca true in
  let pruning =
    List.map
      (fun (kname, kind, simplify) ->
        let rows, parts = run_parts kind simplify in
        if rows <> rows_ref then
          failwith
            ("bench_analysis: " ^ kname ^ " changed the transitive answer");
        (kname, parts))
      [ ("orca_off", `Orca, false);
        ("planner_on", `Planner, true);
        ("planner_off", `Planner, false) ]
  in
  let planner_on = List.assoc "planner_on" pruning in
  let planner_off = List.assoc "planner_off" pruning in
  Printf.printf
    "%-24s store_sales partitions: planner %d -> %d, orca %d -> %d (of 36)\n"
    qu.W.Queries.name planner_off planner_on
    (List.assoc "orca_off" pruning)
    orca_on;
  if not (planner_on < planner_off) then
    failwith
      "bench_analysis: implied-predicate strengthening did not reduce the \
       partitions opened";
  let section =
    Json.Obj
      [ ("smoke", Json.Bool smoke);
        ("note",
         Json.String
           "overhead_pct is the paired-median cost of the always-on \
            abstract-interpretation simplify/strengthen pass as a share of \
            optimize+execute (the PR 6 gate's denominator), gated at 2%; \
            overhead_pct_optimize is its share of the microsecond-scale \
            in-process optimization alone, recorded for scale context like \
            the verifier's.  transitive_pruning counts store_sales \
            partitions opened for ss_sr_transitive_date, whose only \
            partition-key restriction arrives through the equi-join \
            equivalence class.");
        ("workload",
         Json.Obj
           (List.map (fun (k, j, _) -> (k, j)) kind_sections));
        ("transitive_pruning",
         Json.Obj
           (("query", Json.String qu.W.Queries.name)
           :: ("parts_total", Json.Int 36)
           :: ("orca_on", Json.Int orca_on)
           :: List.map (fun (k, p) -> (k, Json.Int p)) pruning)) ]
  in
  record "analysis" section;
  if smoke then
    print_endline
      "smoke OK: analysis schema valid; simplification preserved the \
       transitive answer and the strengthening pass pruned the Planner's \
       scan set"
  else
    List.iter
      (fun (kname, _, (pct, delta_ms)) ->
        (* absolute noise floor: sub-half-millisecond deltas across the
           whole workload are scheduler jitter, not pass cost *)
        if pct > 2.0 && delta_ms > 0.5 then
          failwith
            (Printf.sprintf
               "bench_analysis: %s simplification overhead %+.2f%% \
                (%+.3f ms) exceeds the 2%% budget"
               kname pct delta_ms))
      kind_sections

(* ------------------------------------------------------------------ *)
(* Serving layer: plan-cache QPS, cold vs warm, 1..K sessions           *)
(* ------------------------------------------------------------------ *)

module Serve = Mpp_serve.Serve

(* [serve] — sustained-QPS measurement of the concurrent serving layer on
   the full mixed workload.  One cold pass (empty plan cache — every
   statement pays normalize + optimize + verify) establishes the floor;
   warm sweeps over 1..K concurrent sessions then replay the workload
   through the cache, where a hit costs only a fingerprint probe plus a
   partition re-selection at bind time.  Every warm result is asserted
   row-identical to the cold pass.  The multi-session >= single-session
   throughput check only applies on a multi-core host: with one core the
   sessions serialize on the single executor domain and concurrency can
   only add coordination overhead.  [~smoke] runs one tiny sweep and
   asserts the warm hit rate is positive and rows match. *)
let bench_serve ?(smoke = false) () =
  header
    (if smoke then "Bench: serving layer (smoke mode, tiny scale)"
     else "Bench: serving layer — plan-cache QPS, cold vs warm sessions");
  let scale = if smoke then 1 else 4 in
  let env = W.Runner.setup_env ~scale () in
  let cores = Domain.recommended_domain_count () in
  let max_sessions = if smoke then 2 else 4 in
  let repeat = if smoke then 1 else 3 in
  let config =
    { Serve.default_config with
      optimizer = Serve.Orca;
      workers = max 2 (min 4 cores);
      capacity = 4;
      exec_domains = 1 }
  in
  let srv =
    Serve.create ~config ~stats:env.W.Runner.stats
      ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage ()
  in
  Fun.protect ~finally:(fun () -> Serve.close srv) @@ fun () ->
  let stmts =
    List.map
      (fun (qu : W.Queries.query) ->
        (Serve.prepare srv qu.W.Queries.sql, []))
      W.Queries.all
  in
  let nq = List.length stmts in
  let sorted_rows rows = List.sort compare (List.map Array.to_list rows) in
  (* one measured sweep: [n] sessions, [reps] workload passes per session *)
  let run_sweep n reps =
    let pass = List.concat (List.init reps (fun _ -> stmts)) in
    let seconds, out =
      time_run (fun () -> Serve.run_stream srv (Array.init n (fun _ -> pass)))
    in
    let rs = List.concat (Array.to_list out) in
    let total = List.length rs in
    let hits = List.length (List.filter (fun r -> r.Serve.cache_hit) rs) in
    let hit_opt_ms =
      match List.filter (fun r -> r.Serve.cache_hit) rs with
      | [] -> 0.0
      | hs ->
          List.fold_left (fun a r -> a +. r.Serve.opt_seconds) 0.0 hs
          *. 1000.0
          /. float_of_int (List.length hs)
    in
    (seconds, out, total, hits, hit_opt_ms)
  in
  (* ---- cold pass: empty cache, one session ---- *)
  let cold_s, cold_out, cold_n, cold_hits, _ = run_sweep 1 1 in
  let cold_qps = float_of_int cold_n /. cold_s in
  let cold_rows = List.map (fun r -> sorted_rows r.Serve.rows) cold_out.(0) in
  Printf.printf "cold: %d queries in %.3f s (%.1f QPS), %d cache hit(s)\n\n"
    cold_n cold_s cold_qps cold_hits;
  (* ---- warm sweeps, 1..K sessions ---- *)
  Printf.printf "%-10s %-10s %-10s %-10s %-12s\n" "sessions" "queries"
    "time (s)" "QPS" "hit opt(ms)";
  let warm_hit_rate = ref 0.0 in
  let warm1_qps = ref 0.0 in
  let best_multi_qps = ref 0.0 in
  let sweeps =
    List.map
      (fun n ->
        let seconds, out, total, hits, hit_opt_ms = run_sweep n repeat in
        (* every warm result must be row-identical to the cold pass *)
        Array.iter
          (List.iteri (fun i r ->
               if sorted_rows r.Serve.rows <> List.nth cold_rows (i mod nq)
               then
                 failwith
                   (Printf.sprintf
                      "bench_serve: warm rows differ from cold rows \
                       (sessions=%d, statement %d)"
                      n (i mod nq))))
          out;
        let qps = float_of_int total /. seconds in
        let hit_rate = float_of_int hits /. float_of_int (max total 1) in
        if n = 1 then begin
          warm1_qps := qps;
          warm_hit_rate := hit_rate
        end
        else best_multi_qps := Float.max !best_multi_qps qps;
        Printf.printf "%-10d %-10d %-10.3f %-10.1f %-12.3f\n" n total seconds
          qps hit_opt_ms;
        Json.Obj
          [ ("sessions", Json.Int n);
            ("queries", Json.Int total);
            ("seconds", Json.Float seconds);
            ("qps", Json.Float qps);
            ("hit_rate", Json.Float hit_rate);
            ("hit_opt_ms", Json.Float hit_opt_ms) ])
      (List.init max_sessions (fun i -> i + 1))
  in
  let warm_over_cold = !warm1_qps /. cold_qps in
  Printf.printf
    "\nwarm/cold QPS (1 session): %.2fx; warm hit rate: %.2f; cores: %d\n"
    warm_over_cold !warm_hit_rate cores;
  if !warm_hit_rate <= 0.0 then
    failwith "bench_serve: warm pass never hit the plan cache";
  (* a concurrency win is only promised when there is real parallelism *)
  if (not smoke) && cores > 1 && !best_multi_qps < 0.9 *. !warm1_qps then
    failwith
      (Printf.sprintf
         "bench_serve: multi-session QPS %.1f below single-session %.1f on \
          a %d-core host"
         !best_multi_qps !warm1_qps cores);
  let section =
    Json.Obj
      [ ("smoke", Json.Bool smoke);
        ("scale", Json.Int scale);
        ("cores", Json.Int cores);
        ("nqueries", Json.Int nq);
        ("cold_qps", Json.Float cold_qps);
        ("warm_hit_rate", Json.Float !warm_hit_rate);
        ("warm_over_cold", Json.Float warm_over_cold);
        ("sweeps", Json.List sweeps);
        ("serve", Serve.stats_to_json srv) ]
  in
  record "serve" section;
  if smoke then
    print_endline
      "smoke OK: serve warm hit rate positive, warm results row-identical \
       to cold, cached hits optimize in ~0 ms"

(* ------------------------------------------------------------------ *)
(* Regression gate: fresh BENCH_RESULTS.json vs committed baseline      *)
(* ------------------------------------------------------------------ *)

(* [check-regression [BASELINE]] — compare the metrics listed in the
   committed baseline (default [BASELINE.json] next to this executable's
   invocation directory, i.e. [bench/BASELINE.json] in the repo) against a
   fresh [BENCH_RESULTS.json], with a ±tolerance (default 20%) per metric.
   The baseline deliberately pins only machine-independent metrics
   (deterministic tuple/Motion counts from the seeded generators), so the
   gate is meaningful on any machine; paths are dotted keys into the
   [experiments] object.  A baseline may also carry a [min_metrics]
   object: one-sided floors (fresh >= pinned value) for ratios that must
   not collapse but have no meaningful upper bound, such as the serving
   layer's warm/cold QPS ratio.  Exits 1 loudly on any missing or
   out-of-band metric. *)
let check_regression baseline_file =
  header ("Regression check vs " ^ baseline_file);
  let load path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Json.parse (really_input_string ic (in_channel_length ic)))
  in
  if not (Sys.file_exists baseline_file) then begin
    Printf.eprintf "check-regression: baseline %s not found\n" baseline_file;
    exit 1
  end;
  if not (Sys.file_exists "BENCH_RESULTS.json") then begin
    Printf.eprintf
      "check-regression: no fresh BENCH_RESULTS.json here — run the \
       benchmarks first (e.g. bench/main.exe join-filter --smoke)\n";
    exit 1
  end;
  let baseline = load baseline_file in
  let fresh = load "BENCH_RESULTS.json" in
  let tolerance_pct =
    match Json.member "tolerance_pct" baseline with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 20.0
  in
  let metrics =
    match Json.member "metrics" baseline with
    | Some (Json.Obj kvs) -> kvs
    | _ ->
        Printf.eprintf
          "check-regression: baseline has no \"metrics\" object\n";
        exit 1
  in
  let experiments =
    match Json.member "experiments" fresh with
    | Some obj -> obj
    | None ->
        Printf.eprintf
          "check-regression: BENCH_RESULTS.json has no experiments\n";
        exit 1
  in
  let lookup path =
    let rec go j = function
      | [] -> Some j
      | k :: tl -> (
          match j with
          | Json.Obj _ -> Option.bind (Json.member k j) (fun v -> go v tl)
          | Json.List l -> (
              match int_of_string_opt k with
              | Some i when i >= 0 && i < List.length l ->
                  go (List.nth l i) tl
              | _ -> None)
          | _ -> None)
    in
    go experiments (String.split_on_char '.' path)
  in
  let as_float = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let nfail = ref 0 in
  Printf.printf "%-44s %12s %12s  %s\n" "metric" "baseline" "fresh" "status";
  List.iter
    (fun (path, base_j) ->
      match (as_float (Some base_j), as_float (lookup path)) with
      | Some base, Some now ->
          let tol = tolerance_pct /. 100.0 *. Float.abs base in
          let ok = Float.abs (now -. base) <= tol in
          if not ok then incr nfail;
          Printf.printf "%-44s %12.3f %12.3f  %s\n" path base now
            (if ok then "ok"
             else
               Printf.sprintf "REGRESSION (>±%.0f%%)" tolerance_pct)
      | Some _, None ->
          incr nfail;
          Printf.printf "%-44s %12s %12s  MISSING in fresh results\n" path
            "-" "-"
      | None, _ ->
          incr nfail;
          Printf.printf "%-44s %12s %12s  baseline value not numeric\n" path
            "-" "-")
    metrics;
  let min_metrics =
    match Json.member "min_metrics" baseline with
    | Some (Json.Obj kvs) -> kvs
    | _ -> []
  in
  List.iter
    (fun (path, base_j) ->
      match (as_float (Some base_j), as_float (lookup path)) with
      | Some base, Some now ->
          let ok = now >= base in
          if not ok then incr nfail;
          Printf.printf "%-44s %12.3f %12.3f  %s\n" path base now
            (if ok then "ok (floor)" else "REGRESSION (below floor)")
      | Some _, None ->
          incr nfail;
          Printf.printf "%-44s %12s %12s  MISSING in fresh results\n" path
            "-" "-"
      | None, _ ->
          incr nfail;
          Printf.printf "%-44s %12s %12s  baseline value not numeric\n" path
            "-" "-")
    min_metrics;
  if !nfail > 0 then begin
    Printf.printf "\n%d metric(s) regressed or missing vs %s\n" !nfail
      baseline_file;
    exit 1
  end
  else
    Printf.printf "\nall %d metric(s) within ±%.0f%% of baseline\n"
      (List.length metrics + List.length min_metrics)
      tolerance_pct

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let all () =
  table2 ();
  table3 ();
  fig16 ();
  fig17 ();
  fig18a ();
  fig18b ();
  fig18c ();
  ablation_memo ();
  ablation_pwj ();
  micro_exec ();
  part_select ();
  bench_verify ();
  join_filter ();
  bench_profile ();
  opt_scaling ();
  bench_analysis ();
  bench_serve ()

let () =
  (match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "fig16" -> fig16 ()
  | "fig17" -> fig17 ()
  | "fig18a" -> fig18a ()
  | "fig18b" -> fig18b ()
  | "fig18c" -> fig18c ()
  | "ablation-memo" -> ablation_memo ()
  | "ablation-pwj" -> ablation_pwj ()
  | "micro" -> micro ()
  | "micro-exec" ->
      micro_exec
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "part-select" ->
      part_select
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "obs-overhead" -> obs_overhead ()
  | "verify" ->
      bench_verify
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "join-filter" ->
      join_filter
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "profile" ->
      bench_profile
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "opt-scaling" ->
      opt_scaling
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "analysis" ->
      bench_analysis
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "serve" ->
      bench_serve
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke") ()
  | "check-regression" | "--check-regression" ->
      check_regression
        (if Array.length Sys.argv > 2 then Sys.argv.(2) else "BASELINE.json")
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown experiment %s (expected table2|table3|fig16|fig17|fig18a|\
         fig18b|fig18c|ablation-memo|ablation-pwj|micro|micro-exec|\
         part-select|obs-overhead|verify|join-filter|profile|opt-scaling|\
         analysis|serve|check-regression|all)\n"
        other;
      exit 1);
  write_results ()

(** Serial-vs-parallel equivalence: the domain-pool executor must be
    observationally identical to serial execution at any [?domains] setting.

    This holds by construction — per-segment operator tasks are independent
    and deterministic, and the {!Channel} / {!Metrics} shards are touched
    only by their segment's domain — and this suite pins it down:

    - identical result sets (sorted rows) for every workload query;
    - identical work counters (tuples scanned / moved, partition opens);
    - identical selected-partition sets, per root table, OID for OID.

    Runs the full evaluation workload through Orca plans plus hand-built
    join / DynamicScan plans on a multi-segment cluster, each with 1 domain
    and with 4 domains (oversubscription is fine — correctness must not
    depend on core count). *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan
module Exec = Mpp_exec.Exec
module Metrics = Mpp_exec.Metrics
module W = Mpp_workload

let serial_domains = 1
let parallel_domains = 4

module Node_stats = Mpp_exec.Node_stats

(* Per-node EXPLAIN ANALYZE stats must also be identical serial vs
   parallel — rows, per-segment row distribution, partition accounting,
   Motion volume, invocation counts.  Only wall times may differ. *)
let check_stats_equivalent ~what ~catalog ~storage ?params ?selection_enabled
    plan =
  let run domains =
    let _, _, st =
      Exec.run_analyze ?params ?selection_enabled ~domains ~catalog ~storage
        plan
    in
    st
  in
  let st_s = run serial_domains and st_p = run parallel_domains in
  Alcotest.(check int)
    (what ^ ": stats nsegments")
    (Node_stats.nsegments st_s) (Node_stats.nsegments st_p);
  for id = 0 to Plan.node_count plan - 1 do
    match (Node_stats.find st_s id, Node_stats.find st_p id) with
    | None, None -> ()
    | Some a, Some b ->
        let chk name va vb =
          Alcotest.(check int)
            (Printf.sprintf "%s: node %d %s" what id name)
            va vb
        in
        chk "rows" a.Node_stats.rows b.Node_stats.rows;
        chk "invocations" a.Node_stats.invocations b.Node_stats.invocations;
        chk "parts_scanned" a.Node_stats.parts_scanned
          b.Node_stats.parts_scanned;
        chk "parts_selected" a.Node_stats.parts_selected
          b.Node_stats.parts_selected;
        chk "parts_total" a.Node_stats.parts_total b.Node_stats.parts_total;
        chk "tuples_moved" a.Node_stats.tuples_moved b.Node_stats.tuples_moved;
        Alcotest.(check (array int))
          (Printf.sprintf "%s: node %d seg_rows" what id)
          a.Node_stats.seg_rows b.Node_stats.seg_rows
    | _ ->
        Alcotest.fail
          (Printf.sprintf "%s: node %d recorded in one run only" what id)
  done

(* Compare one plan's two executions end to end. *)
let check_equivalent ~what ~catalog ~storage ?params ?selection_enabled plan =
  let rows_s, m_s =
    Exec.run ?params ?selection_enabled ~domains:serial_domains ~catalog
      ~storage plan
  in
  let rows_p, m_p =
    Exec.run ?params ?selection_enabled ~domains:parallel_domains ~catalog
      ~storage plan
  in
  check_stats_equivalent ~what ~catalog ~storage ?params ?selection_enabled
    plan;
  Support.check_rows_equal (what ^ " rows") rows_s rows_p;
  Alcotest.(check int)
    (what ^ ": tuples_scanned")
    m_s.Metrics.tuples_scanned m_p.Metrics.tuples_scanned;
  Alcotest.(check int)
    (what ^ ": tuples_moved")
    m_s.Metrics.tuples_moved m_p.Metrics.tuples_moved;
  Alcotest.(check int)
    (what ^ ": partition_opens")
    m_s.Metrics.partition_opens m_p.Metrics.partition_opens;
  Alcotest.(check (list int))
    (what ^ ": roots with scanned partitions")
    (Metrics.roots_scanned m_s) (Metrics.roots_scanned m_p);
  List.iter
    (fun root ->
      Alcotest.(check (list int))
        (Printf.sprintf "%s: selected partitions of root %d" what root)
        (Metrics.scanned_oids m_s ~root_oid:root)
        (Metrics.scanned_oids m_p ~root_oid:root))
    (Metrics.roots_scanned m_s)

(* ---- the full evaluation workload, Orca plans ---- *)

let test_workload_queries () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  List.iter
    (fun (q : W.Queries.query) ->
      let plan = W.Runner.optimize_with env W.Runner.Orca q in
      check_equivalent ~what:q.W.Queries.name
        ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage plan)
    W.Queries.all

(* ...and with partition selection disabled (every leaf scanned, so the
   parallel sections touch every shard of every channel slot) *)
let test_workload_selection_disabled () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  List.iter
    (fun (q : W.Queries.query) ->
      let plan = W.Runner.optimize_with env W.Runner.Orca q in
      check_equivalent
        ~what:(q.W.Queries.name ^ " (no selection)")
        ~selection_enabled:false ~catalog:env.W.Runner.catalog
        ~storage:env.W.Runner.storage plan)
    (List.filteri (fun i _ -> i mod 4 = 0) W.Queries.all)

(* ---- hand-built plans on a seven-segment cluster ---- *)

let odd_fixture () =
  let catalog = Cat.create () in
  let t =
    Cat.add_table catalog ~name:"t"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let dim =
    Cat.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let storage = Storage.create ~nsegments:7 in
  for i = 0 to 199 do
    Storage.insert storage t [| Value.Int i; Value.Int (i mod 11) |]
  done;
  for k = 0 to 10 do
    Storage.insert storage dim
      [| Value.Int k; Value.String (if k mod 2 = 0 then "even" else "odd") |]
  done;
  (catalog, storage, t, dim)

let col ~rel ~index ~name = Colref.make ~rel ~index ~name ~dtype:Value.Tint

let test_join_kinds_seven_segments () =
  let catalog, storage, t, dim = odd_fixture () in
  let t_b = col ~rel:0 ~index:1 ~name:"b" in
  let dim_k = col ~rel:1 ~index:0 ~name:"k" in
  let pred = Expr.eq (Expr.col dim_k) (Expr.col t_b) in
  List.iter
    (fun (name, kind) ->
      let plan =
        Plan.motion Plan.Gather
          (Plan.hash_join ~kind ~pred
             (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
             (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
      in
      check_equivalent ~what:(name ^ " join") ~catalog ~storage plan)
    [ ("inner", Plan.Inner); ("left outer", Plan.Left_outer);
      ("semi", Plan.Semi) ]

let test_agg_sort_limit_seven_segments () =
  let catalog, storage, t, _ = odd_fixture () in
  let t_a = col ~rel:0 ~index:0 ~name:"a" in
  let t_b = col ~rel:0 ~index:1 ~name:"b" in
  (* agg output layout is rel -1: [b; n; sum_a] — sort on the group key *)
  let g_b = Colref.make ~rel:(-1) ~index:0 ~name:"b" ~dtype:Value.Tint in
  let plan =
    Plan.Limit
      { rows = 5;
        child =
          Plan.Sort
            { keys = [ Expr.col g_b ];
              child =
                Plan.agg
                  ~group_by:[ Expr.col t_b ]
                  ~aggs:
                    [ ("n", Plan.Count_star); ("sum_a", Plan.Sum (Expr.col t_a)) ]
                  (Plan.motion Plan.Gather
                     (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid)) } }
  in
  check_equivalent ~what:"agg+sort+limit" ~catalog ~storage plan

(* Hand-built streaming-DPE plan: a join-driven selector (Figure 5(d))
   above the build side resolves partitions per distinct join key through
   the selection index's memoized path and pushes the OID sets into the
   sharded channel via the batched [propagate_set].  The selected-OID sets
   per root (checked by [check_equivalent] through [Metrics.scanned_oids])
   must be identical serial vs parallel. *)
let test_streaming_dpe_memoized () =
  let catalog = Cat.create () in
  let part =
    Mpp_catalog.Partition.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:1 ~key_name:"b" ~scheme:Mpp_catalog.Partition.Range
      ~table_name:"fact"
      (Mpp_catalog.Partition.int_ranges ~start:0 ~width:10 ~count:20)
  in
  let fact =
    Cat.add_table catalog ~name:"fact"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning:part ()
  in
  let dim =
    Cat.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 499 do
    Storage.insert storage fact [| Value.Int i; Value.Int (i mod 200) |]
  done;
  (* duplicate keys (memo hits), a key outside every partition, and a NULL
     key (routes nowhere) *)
  List.iter
    (fun k ->
      Storage.insert storage dim [| k; Value.String "x" |])
    [ Value.Int 7; Value.Int 7; Value.Int 63; Value.Int 63; Value.Int 140;
      Value.Int 9999; Value.Null ];
  let dim_k = col ~rel:1 ~index:0 ~name:"k" in
  let fact_b = Mpp_catalog.Table.colref fact ~rel:0 "b" in
  let join_pred = Expr.eq (Expr.col dim_k) (Expr.col fact_b) in
  let plan =
    Plan.motion Plan.Gather
      (Plan.hash_join ~kind:Plan.Inner ~pred:join_pred
         (Plan.partition_selector
            ~child:(Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
            ~part_scan_id:1 ~root_oid:fact.Mpp_catalog.Table.oid
            ~keys:[ fact_b ]
            ~predicates:[ Some (Expr.eq (Expr.col fact_b) (Expr.col dim_k)) ]
            ())
         (Plan.dynamic_scan ~rel:0 ~part_scan_id:1
            fact.Mpp_catalog.Table.oid))
  in
  check_equivalent ~what:"streaming-DPE memoized selection" ~catalog ~storage
    plan;
  (* sanity: the selector actually pruned — only the 3 leaves holding the
     in-range keys {7, 63, 140} are ever scanned *)
  let _, m = Exec.run ~catalog ~storage plan in
  Alcotest.(check int) "3 of 20 partitions scanned" 3
    (List.length
       (Metrics.scanned_oids m ~root_oid:fact.Mpp_catalog.Table.oid))

(* Dynamic selection: streaming selector feeding a DynamicScan through the
   sharded channel, exercised at both domain counts. *)
let test_dynamic_selection_parallel () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  let star =
    List.find
      (fun (q : W.Queries.query) -> q.W.Queries.expected = W.Queries.Orca_only)
      W.Queries.all
  in
  let plan = W.Runner.optimize_with env W.Runner.Orca star in
  check_equivalent ~what:star.W.Queries.name ~catalog:env.W.Runner.catalog
    ~storage:env.W.Runner.storage plan

let () =
  Alcotest.run "parallel"
    [ ("serial vs parallel",
       [ Alcotest.test_case "workload queries" `Quick test_workload_queries;
         Alcotest.test_case "selection disabled" `Quick
           test_workload_selection_disabled;
         Alcotest.test_case "join kinds, 7 segments" `Quick
           test_join_kinds_seven_segments;
         Alcotest.test_case "agg+sort+limit, 7 segments" `Quick
           test_agg_sort_limit_seven_segments;
         Alcotest.test_case "dynamic selection" `Quick
           test_dynamic_selection_parallel;
         Alcotest.test_case "streaming-DPE memoized selection" `Quick
           test_streaming_dpe_memoized ]) ]

(** Serial-vs-parallel equivalence: the domain-pool executor must be
    observationally identical to serial execution at any [?domains] setting.

    This holds by construction — per-segment operator tasks are independent
    and deterministic, and the {!Channel} / {!Metrics} shards are touched
    only by their segment's domain — and this suite pins it down:

    - identical result sets (sorted rows) for every workload query;
    - identical work counters (tuples scanned / moved, partition opens);
    - identical selected-partition sets, per root table, OID for OID.

    Runs the full evaluation workload through Orca plans plus hand-built
    join / DynamicScan plans on a multi-segment cluster, each with 1 domain
    and with 4 domains (oversubscription is fine — correctness must not
    depend on core count). *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan
module Exec = Mpp_exec.Exec
module Metrics = Mpp_exec.Metrics
module W = Mpp_workload

let serial_domains = 1
let parallel_domains = 4

(* Compare one plan's two executions end to end. *)
let check_equivalent ~what ~catalog ~storage ?params ?selection_enabled plan =
  let rows_s, m_s =
    Exec.run ?params ?selection_enabled ~domains:serial_domains ~catalog
      ~storage plan
  in
  let rows_p, m_p =
    Exec.run ?params ?selection_enabled ~domains:parallel_domains ~catalog
      ~storage plan
  in
  Support.check_rows_equal (what ^ " rows") rows_s rows_p;
  Alcotest.(check int)
    (what ^ ": tuples_scanned")
    m_s.Metrics.tuples_scanned m_p.Metrics.tuples_scanned;
  Alcotest.(check int)
    (what ^ ": tuples_moved")
    m_s.Metrics.tuples_moved m_p.Metrics.tuples_moved;
  Alcotest.(check int)
    (what ^ ": partition_opens")
    m_s.Metrics.partition_opens m_p.Metrics.partition_opens;
  Alcotest.(check (list int))
    (what ^ ": roots with scanned partitions")
    (Metrics.roots_scanned m_s) (Metrics.roots_scanned m_p);
  List.iter
    (fun root ->
      Alcotest.(check (list int))
        (Printf.sprintf "%s: selected partitions of root %d" what root)
        (Metrics.scanned_oids m_s ~root_oid:root)
        (Metrics.scanned_oids m_p ~root_oid:root))
    (Metrics.roots_scanned m_s)

(* ---- the full evaluation workload, Orca plans ---- *)

let test_workload_queries () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  List.iter
    (fun (q : W.Queries.query) ->
      let plan = W.Runner.optimize_with env W.Runner.Orca q in
      check_equivalent ~what:q.W.Queries.name
        ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage plan)
    W.Queries.all

(* ...and with partition selection disabled (every leaf scanned, so the
   parallel sections touch every shard of every channel slot) *)
let test_workload_selection_disabled () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  List.iter
    (fun (q : W.Queries.query) ->
      let plan = W.Runner.optimize_with env W.Runner.Orca q in
      check_equivalent
        ~what:(q.W.Queries.name ^ " (no selection)")
        ~selection_enabled:false ~catalog:env.W.Runner.catalog
        ~storage:env.W.Runner.storage plan)
    (List.filteri (fun i _ -> i mod 4 = 0) W.Queries.all)

(* ---- hand-built plans on a seven-segment cluster ---- *)

let odd_fixture () =
  let catalog = Cat.create () in
  let t =
    Cat.add_table catalog ~name:"t"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let dim =
    Cat.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let storage = Storage.create ~nsegments:7 in
  for i = 0 to 199 do
    Storage.insert storage t [| Value.Int i; Value.Int (i mod 11) |]
  done;
  for k = 0 to 10 do
    Storage.insert storage dim
      [| Value.Int k; Value.String (if k mod 2 = 0 then "even" else "odd") |]
  done;
  (catalog, storage, t, dim)

let col ~rel ~index ~name = Colref.make ~rel ~index ~name ~dtype:Value.Tint

let test_join_kinds_seven_segments () =
  let catalog, storage, t, dim = odd_fixture () in
  let t_b = col ~rel:0 ~index:1 ~name:"b" in
  let dim_k = col ~rel:1 ~index:0 ~name:"k" in
  let pred = Expr.eq (Expr.col dim_k) (Expr.col t_b) in
  List.iter
    (fun (name, kind) ->
      let plan =
        Plan.motion Plan.Gather
          (Plan.hash_join ~kind ~pred
             (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
             (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
      in
      check_equivalent ~what:(name ^ " join") ~catalog ~storage plan)
    [ ("inner", Plan.Inner); ("left outer", Plan.Left_outer);
      ("semi", Plan.Semi) ]

let test_agg_sort_limit_seven_segments () =
  let catalog, storage, t, _ = odd_fixture () in
  let t_a = col ~rel:0 ~index:0 ~name:"a" in
  let t_b = col ~rel:0 ~index:1 ~name:"b" in
  (* agg output layout is rel -1: [b; n; sum_a] — sort on the group key *)
  let g_b = Colref.make ~rel:(-1) ~index:0 ~name:"b" ~dtype:Value.Tint in
  let plan =
    Plan.Limit
      { rows = 5;
        child =
          Plan.Sort
            { keys = [ Expr.col g_b ];
              child =
                Plan.agg
                  ~group_by:[ Expr.col t_b ]
                  ~aggs:
                    [ ("n", Plan.Count_star); ("sum_a", Plan.Sum (Expr.col t_a)) ]
                  (Plan.motion Plan.Gather
                     (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid)) } }
  in
  check_equivalent ~what:"agg+sort+limit" ~catalog ~storage plan

(* Dynamic selection: streaming selector feeding a DynamicScan through the
   sharded channel, exercised at both domain counts. *)
let test_dynamic_selection_parallel () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  let star =
    List.find
      (fun (q : W.Queries.query) -> q.W.Queries.expected = W.Queries.Orca_only)
      W.Queries.all
  in
  let plan = W.Runner.optimize_with env W.Runner.Orca star in
  check_equivalent ~what:star.W.Queries.name ~catalog:env.W.Runner.catalog
    ~storage:env.W.Runner.storage plan

let () =
  Alcotest.run "parallel"
    [ ("serial vs parallel",
       [ Alcotest.test_case "workload queries" `Quick test_workload_queries;
         Alcotest.test_case "selection disabled" `Quick
           test_workload_selection_disabled;
         Alcotest.test_case "join kinds, 7 segments" `Quick
           test_join_kinds_seven_segments;
         Alcotest.test_case "agg+sort+limit, 7 segments" `Quick
           test_agg_sort_limit_seven_segments;
         Alcotest.test_case "dynamic selection" `Quick
           test_dynamic_selection_parallel ]) ]

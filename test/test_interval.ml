(** Interval-algebra tests — the foundation of partition constraints and of
    the partition-selection function f*_T (paper §3.2). *)

open Mpp_expr

let vi i = Value.Int i
let co a b = Option.get (Interval.closed_open (vi a) (vi b))
let set l = Interval.Set.of_list l

let test_make_empty () =
  Alcotest.(check bool) "empty closed-open" true
    (Interval.closed_open (vi 5) (vi 5) = None);
  Alcotest.(check bool) "reversed is empty" true
    (Interval.closed_open (vi 5) (vi 1) = None);
  Alcotest.(check bool) "point is non-empty" true
    (Interval.make (Interval.B (vi 5, true)) (Interval.B (vi 5, true)) <> None);
  Alcotest.(check bool) "open-open same value is empty" true
    (Interval.make (Interval.B (vi 5, false)) (Interval.B (vi 5, false)) = None)

let test_contains () =
  let iv = co 10 20 in
  Alcotest.(check bool) "lo inclusive" true (Interval.contains iv (vi 10));
  Alcotest.(check bool) "hi exclusive" false (Interval.contains iv (vi 20));
  Alcotest.(check bool) "mid" true (Interval.contains iv (vi 15));
  Alcotest.(check bool) "unbounded above" true
    (Interval.contains (Interval.at_least (vi 3)) (vi 1000));
  Alcotest.(check bool) "full contains everything" true
    (Interval.contains Interval.full (Value.String "zz"))

let test_intersect () =
  (match Interval.intersect (co 0 10) (co 5 15) with
  | Some iv ->
      Alcotest.(check bool) "overlap [5,10)" true
        (Interval.contains iv (vi 5) && not (Interval.contains iv (vi 10)))
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" true
    (Interval.intersect (co 0 5) (co 5 10) = None);
  Alcotest.(check bool) "touching closed bounds intersect" true
    (Interval.intersect (Interval.at_most (vi 5)) (Interval.at_least (vi 5))
    <> None)

let test_set_normalize () =
  let s = set [ co 0 5; co 3 8; co 10 12 ] in
  Alcotest.(check int) "merged to two intervals" 2
    (List.length (Interval.Set.to_list s));
  Alcotest.(check bool) "members" true
    (Interval.Set.contains s (vi 7) && Interval.Set.contains s (vi 11));
  Alcotest.(check bool) "gap" false (Interval.Set.contains s (vi 9))

let test_set_union_inter () =
  let a = set [ co 0 10 ] and b = set [ co 5 15; co 20 25 ] in
  let u = Interval.Set.union a b and i = Interval.Set.inter a b in
  Alcotest.(check bool) "union covers both" true
    (Interval.Set.contains u (vi 2) && Interval.Set.contains u (vi 22));
  Alcotest.(check bool) "inter restricted" true
    (Interval.Set.contains i (vi 7) && not (Interval.Set.contains i (vi 2)));
  Alcotest.(check bool) "inter with empty is empty" true
    (Interval.Set.is_empty (Interval.Set.inter a Interval.Set.empty))

let test_set_complement () =
  let s = set [ co 0 10 ] in
  let c = Interval.Set.complement s in
  Alcotest.(check bool) "below is in complement" true
    (Interval.Set.contains c (vi (-1)));
  Alcotest.(check bool) "inside not in complement" false
    (Interval.Set.contains c (vi 5));
  Alcotest.(check bool) "hi bound in complement (exclusive)" true
    (Interval.Set.contains c (vi 10));
  Alcotest.(check bool) "complement of empty is full" true
    (Interval.Set.is_full (Interval.Set.complement Interval.Set.empty));
  Alcotest.(check bool) "complement of full is empty" true
    (Interval.Set.is_empty (Interval.Set.complement Interval.Set.full))

let test_set_flags () =
  Alcotest.(check bool) "full is full" true (Interval.Set.is_full Interval.Set.full);
  Alcotest.(check bool) "empty is empty" true
    (Interval.Set.is_empty Interval.Set.empty);
  Alcotest.(check bool) "point set not full" false
    (Interval.Set.is_full (Interval.Set.point (vi 3)))

(* ---------------- properties ---------------- *)

let prop_contains_intersect =
  QCheck2.Test.make ~count:2000
    ~name:"v ∈ a∩b iff v ∈ a and v ∈ b"
    QCheck2.Gen.(triple Support.interval_gen Support.interval_gen
                   Support.int_value_gen)
    (fun (a, b, v) ->
      let in_inter =
        match Interval.intersect a b with
        | None -> false
        | Some iv -> Interval.contains iv v
      in
      in_inter = (Interval.contains a v && Interval.contains b v))

let prop_set_union_membership =
  QCheck2.Test.make ~count:2000 ~name:"v ∈ A∪B iff v ∈ A or v ∈ B"
    QCheck2.Gen.(triple Support.interval_set_gen Support.interval_set_gen
                   Support.int_value_gen)
    (fun (a, b, v) ->
      Interval.Set.contains (Interval.Set.union a b) v
      = (Interval.Set.contains a v || Interval.Set.contains b v))

let prop_set_inter_membership =
  QCheck2.Test.make ~count:2000 ~name:"v ∈ A∩B iff v ∈ A and v ∈ B"
    QCheck2.Gen.(triple Support.interval_set_gen Support.interval_set_gen
                   Support.int_value_gen)
    (fun (a, b, v) ->
      Interval.Set.contains (Interval.Set.inter a b) v
      = (Interval.Set.contains a v && Interval.Set.contains b v))

let prop_set_complement_membership =
  QCheck2.Test.make ~count:2000 ~name:"v ∈ ¬A iff v ∉ A"
    QCheck2.Gen.(pair Support.interval_set_gen Support.int_value_gen)
    (fun (a, v) ->
      Interval.Set.contains (Interval.Set.complement a) v
      = not (Interval.Set.contains a v))

let prop_normalize_idempotent =
  QCheck2.Test.make ~count:1000 ~name:"of_list is idempotent"
    Support.interval_set_gen
    (fun s -> Interval.Set.equal s (Interval.Set.of_list (Interval.Set.to_list s)))

let prop_diff_membership =
  QCheck2.Test.make ~count:2000 ~name:"v ∈ A\\B iff v ∈ A and v ∉ B"
    QCheck2.Gen.(triple Support.interval_set_gen Support.interval_set_gen
                   Support.int_value_gen)
    (fun (a, b, v) ->
      Interval.Set.contains (Interval.Set.diff a b) v
      = (Interval.Set.contains a v && not (Interval.Set.contains b v)))

let prop_subset_iff_diff_empty =
  QCheck2.Test.make ~count:2000 ~name:"A ⊆ B iff A\\B = ∅"
    QCheck2.Gen.(pair Support.interval_set_gen Support.interval_set_gen)
    (fun (a, b) ->
      Interval.Set.is_subset a b
      = Interval.Set.is_empty (Interval.Set.diff a b))

let prop_subset_membership =
  QCheck2.Test.make ~count:2000 ~name:"A ⊆ B and v ∈ A implies v ∈ B"
    QCheck2.Gen.(triple Support.interval_set_gen Support.interval_set_gen
                   Support.int_value_gen)
    (fun (a, b, v) ->
      (not (Interval.Set.is_subset a b))
      || (not (Interval.Set.contains a v))
      || Interval.Set.contains b v)

let prop_complement_involutive =
  QCheck2.Test.make ~count:1000 ~name:"¬¬A = A"
    Support.interval_set_gen
    (fun a ->
      Interval.Set.equal a (Interval.Set.complement (Interval.Set.complement a)))

let () =
  Alcotest.run "interval"
    [ ("unit",
       [ Alcotest.test_case "emptiness" `Quick test_make_empty;
         Alcotest.test_case "contains" `Quick test_contains;
         Alcotest.test_case "intersect" `Quick test_intersect;
         Alcotest.test_case "set normalize" `Quick test_set_normalize;
         Alcotest.test_case "set union/inter" `Quick test_set_union_inter;
         Alcotest.test_case "set complement" `Quick test_set_complement;
         Alcotest.test_case "full/empty flags" `Quick test_set_flags ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_contains_intersect; prop_set_union_membership;
           prop_set_inter_membership; prop_set_complement_membership;
           prop_normalize_idempotent; prop_diff_membership;
           prop_subset_iff_diff_empty; prop_subset_membership;
           prop_complement_involutive ]) ]

(** Executor tests: every physical operator against hand-checked inputs —
    scans and filters, join kinds, aggregation, motions, the
    selector→channel→DynamicScan pipeline, guarded scans, and DML. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan
module Exec = Mpp_exec.Exec
module Metrics = Mpp_exec.Metrics
module Channel = Mpp_exec.Channel
module Vec = Mpp_storage.Vec

(* small two-table fixture: t(a int, b int) hashed on a; dim(k int, s text)
   replicated *)
let fixture () =
  let catalog = Cat.create () in
  let t =
    Cat.add_table catalog ~name:"t"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let dim =
    Cat.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 19 do
    Storage.insert storage t [| Value.Int i; Value.Int (i mod 5) |]
  done;
  for k = 0 to 4 do
    Storage.insert storage dim
      [| Value.Int k; Value.String (if k mod 2 = 0 then "even" else "odd") |]
  done;
  (catalog, storage, t, dim)

let col ~rel ~index ~name = Colref.make ~rel ~index ~name ~dtype:Value.Tint

let t_a = col ~rel:0 ~index:0 ~name:"a"
let t_b = col ~rel:0 ~index:1 ~name:"b"
let dim_k = col ~rel:1 ~index:0 ~name:"k"
let dim_s = Colref.make ~rel:1 ~index:1 ~name:"s" ~dtype:Value.Tstring

let run ~catalog ~storage plan = Exec.run ~catalog ~storage plan

let gather p = Plan.motion Plan.Gather p

let test_scan_and_filter () =
  let catalog, storage, t, _ = fixture () in
  let scan =
    Plan.table_scan
      ~filter:(Expr.lt (Expr.col t_a) (Expr.int 5))
      ~rel:0 t.Mpp_catalog.Table.oid
  in
  let rows, m = run ~catalog ~storage (gather scan) in
  Alcotest.(check int) "filtered rows" 5 (List.length rows);
  Alcotest.(check int) "all 20 tuples read" 20 m.Metrics.tuples_scanned

let test_hash_join_inner () =
  let catalog, storage, t, dim = fixture () in
  let join =
    Plan.hash_join ~kind:Plan.Inner
      ~pred:(Expr.eq (Expr.col dim_k) (Expr.col t_b))
      (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
      (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid)
  in
  let rows, _ = run ~catalog ~storage (gather join) in
  (* every t row matches exactly one dim row *)
  Alcotest.(check int) "20 join rows" 20 (List.length rows);
  (* layout is build ++ probe: [k; s; a; b] *)
  List.iter
    (fun r -> Alcotest.(check bool) "join key equal" true (r.(0) = r.(3)))
    rows

let test_nl_join_matches_hash_join () =
  let catalog, storage, t, dim = fixture () in
  let pred = Expr.eq (Expr.col dim_k) (Expr.col t_b) in
  let mk ctor =
    gather
      (ctor ~kind:Plan.Inner ~pred
         (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
         (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let h, _ = run ~catalog ~storage (mk Plan.hash_join) in
  let n, _ = run ~catalog ~storage (mk Plan.nl_join) in
  Support.check_rows_equal "hash vs nested-loop" h n

let test_non_equi_join () =
  let catalog, storage, t, dim = fixture () in
  let pred = Expr.lt (Expr.col dim_k) (Expr.col t_b) in
  let plan =
    gather
      (Plan.nl_join ~kind:Plan.Inner ~pred
         (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
         (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let rows, _ = run ~catalog ~storage plan in
  (* b in 0..4 uniform (4 each); matches = sum over b of b dims = 4*(0+1+2+3+4) *)
  Alcotest.(check int) "non-equi matches" 40 (List.length rows)

let test_semi_join () =
  let catalog, storage, t, dim = fixture () in
  let plan =
    gather
      (Plan.hash_join ~kind:Plan.Semi
         ~pred:
           (Expr.And
              [ Expr.eq (Expr.col dim_k) (Expr.col t_b);
                Expr.eq (Expr.col dim_s) (Expr.str "even") ])
         (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
         (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let rows, _ = run ~catalog ~storage plan in
  (* b ∈ {0,2,4}: 12 of 20 rows; output arity = probe side only *)
  Alcotest.(check int) "semi join keeps matching probe rows once" 12
    (List.length rows);
  List.iter
    (fun r -> Alcotest.(check int) "probe arity" 2 (Array.length r))
    rows

let test_left_outer_join () =
  let catalog, storage, t, dim = fixture () in
  (* preserve dim (build side); restrict probe to b=1 rows *)
  let plan =
    gather
      (Plan.hash_join ~kind:Plan.Left_outer
         ~pred:(Expr.eq (Expr.col dim_k) (Expr.col t_b))
         (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
         (Plan.table_scan
            ~filter:(Expr.eq (Expr.col t_b) (Expr.int 1))
            ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let rows, _ = run ~catalog ~storage plan in
  (* dim is replicated over 4 segments (each copy preserved per segment);
     k=1 matches the b=1 probe rows where they live, all other dim copies
     are null-padded — including k=1 copies on segments with no b=1 row *)
  let matched, padded =
    List.partition (fun r -> not (Value.is_null r.(2))) rows
  in
  let b1_keys = [ 1; 6; 11; 16 ] in
  let segments_with_b1 =
    List.map
      (fun a ->
        Mpp_catalog.Distribution.segment_for_values ~nsegments:4
          [ Value.Int a ])
      b1_keys
    |> List.sort_uniq Int.compare |> List.length
  in
  Alcotest.(check int) "each b=1 row matched once" 4 (List.length matched);
  Alcotest.(check int) "null-padded dim copies"
    (20 - segments_with_b1)
    (List.length padded)

(* Regression: unmatched build rows must be tracked by build-row INDEX, not
   by structural equality.  With two identical unmatched build rows, a
   value-keyed "matched" set conflates them — emitting one null-padded row
   where two are required (or, dually, marking both matched when only the
   value matched).  Exercises both join operators (they share the matched
   bitmap). *)
let test_left_outer_duplicate_build_rows () =
  let mk_join ctor =
    let catalog = Cat.create () in
    let d =
      Cat.add_table catalog ~name:"d"
        ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
        ~distribution:Dist.Replicated ()
    in
    let t =
      Cat.add_table catalog ~name:"t"
        ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
        ~distribution:(Dist.Hashed [ 0 ]) ()
    in
    let storage = Storage.create ~nsegments:1 in
    (* two structurally identical build rows that never match, plus one
       matching build row *)
    Storage.insert storage d [| Value.Int 1; Value.String "x" |];
    Storage.insert storage d [| Value.Int 1; Value.String "x" |];
    Storage.insert storage d [| Value.Int 2; Value.String "y" |];
    Storage.insert storage t [| Value.Int 10; Value.Int 2 |];
    Storage.insert storage t [| Value.Int 11; Value.Int 2 |];
    let plan =
      gather
        (ctor ~kind:Plan.Left_outer
           ~pred:(Expr.eq (Expr.col dim_k) (Expr.col t_b))
           (Plan.table_scan ~rel:1 d.Mpp_catalog.Table.oid)
           (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
    in
    run ~catalog ~storage plan
  in
  List.iter
    (fun (name, ctor) ->
      let rows, _ = mk_join ctor in
      let matched, padded =
        List.partition (fun r -> not (Value.is_null r.(2))) rows
      in
      Alcotest.(check int) (name ^ ": k=2 joins both probe rows") 2
        (List.length matched);
      Alcotest.(check int)
        (name ^ ": BOTH duplicate unmatched build rows null-padded") 2
        (List.length padded))
    [ ("hash", Plan.hash_join); ("nl", Plan.nl_join) ]

let test_agg_group_by () =
  let catalog, storage, t, _ = fixture () in
  let plan =
    Plan.agg
      ~group_by:[ Expr.col t_b ]
      ~aggs:
        [ ("n", Plan.Count_star); ("sum_a", Plan.Sum (Expr.col t_a));
          ("max_a", Plan.Max (Expr.col t_a)) ]
      (gather (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let rows, _ = run ~catalog ~storage plan in
  Alcotest.(check int) "5 groups" 5 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "each group has 4 rows" true (r.(1) = Value.Int 4))
    rows

let test_agg_scalar_empty () =
  let catalog, storage, t, _ = fixture () in
  let plan =
    Plan.agg ~group_by:[]
      ~aggs:[ ("n", Plan.Count_star); ("avg_a", Plan.Avg (Expr.col t_a)) ]
      (gather
         (Plan.table_scan ~filter:Expr.false_ ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let rows, _ = run ~catalog ~storage plan in
  match rows with
  | [ r ] ->
      Alcotest.(check bool) "count over empty is 0" true (r.(0) = Value.Int 0);
      Alcotest.(check bool) "avg over empty is null" true (Value.is_null r.(1))
  | _ -> Alcotest.fail "scalar agg yields exactly one row"

let test_sort_limit () =
  let catalog, storage, t, _ = fixture () in
  let plan =
    Plan.Limit
      { rows = 3;
        child =
          Plan.Sort
            { keys = [ Expr.col t_a ];
              child = gather (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid) } }
  in
  let rows, _ = run ~catalog ~storage plan in
  Alcotest.(check (list int)) "lowest three a values" [ 0; 1; 2 ]
    (List.map (fun r -> Value.to_int r.(0)) rows)

let test_redistribute_colocates () =
  let catalog, storage, t, _ = fixture () in
  (* redistribute on b: all rows with equal b end up on one segment *)
  let plan =
    Plan.motion (Plan.Redistribute [ t_b ])
      (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid)
  in
  let ctx = Exec.create_ctx ~catalog ~storage () in
  let r = Exec.exec ctx plan in
  let nseg = Storage.nsegments storage in
  for b = 0 to 4 do
    let segments_with_b = ref 0 in
    for seg = 0 to nseg - 1 do
      if Vec.exists (fun row -> row.(1) = Value.Int b) r.Exec.rows.(seg) then
        incr segments_with_b
    done;
    Alcotest.(check int)
      (Printf.sprintf "b=%d on exactly one segment" b)
      1 !segments_with_b
  done

let test_broadcast_and_gather () =
  let catalog, storage, t, _ = fixture () in
  let ctx = Exec.create_ctx ~catalog ~storage () in
  let b =
    Exec.exec ctx
      (Plan.motion Plan.Broadcast (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  Array.iter
    (fun rows -> Alcotest.(check int) "each segment has all rows" 20
        (Vec.length rows))
    b.Exec.rows;
  let ctx2 = Exec.create_ctx ~catalog ~storage () in
  let g =
    Exec.exec ctx2
      (Plan.motion Plan.Gather (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  Alcotest.(check int) "gather puts everything on segment 0" 20
    (Vec.length g.Exec.rows.(0));
  Alcotest.(check int) "other segments empty" 0 (Vec.length g.Exec.rows.(1))

let test_gather_one () =
  let catalog, storage, _, dim = fixture () in
  let plan =
    Plan.motion Plan.Gather_one
      (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
  in
  let rows, _ = run ~catalog ~storage plan in
  Alcotest.(check int) "replicated table read once, not 4 times" 5
    (List.length rows)

(* ---- partition selection pipeline ---- *)

let partitioned_fixture () =
  let catalog, orders = Support.orders_schema () in
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 1000;
  (catalog, storage, orders)

let o_date orders = Mpp_catalog.Table.colref orders ~rel:0 "date"

let test_static_selector_pipeline () =
  let catalog, storage, orders = partitioned_fixture () in
  let pred =
    Expr.between
      (Expr.col (o_date orders))
      (Expr.date "2013-10-01") (Expr.date "2013-12-31")
  in
  let plan =
    gather
      (Plan.Sequence
         [ Plan.partition_selector ~part_scan_id:1
             ~root_oid:orders.Mpp_catalog.Table.oid
             ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
           Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
             orders.Mpp_catalog.Table.oid ])
  in
  let rows, m = run ~catalog ~storage plan in
  Alcotest.(check int) "3 partitions scanned" 3
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  (* reference: full scan + filter *)
  let reference =
    gather
      (Plan.Sequence
         [ Plan.partition_selector ~part_scan_id:1
             ~root_oid:orders.Mpp_catalog.Table.oid
             ~keys:[ o_date orders ] ~predicates:[ None ] ();
           Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
             orders.Mpp_catalog.Table.oid ])
  in
  let ref_rows, ref_m = run ~catalog ~storage reference in
  Alcotest.(check int) "Φ selector scans all parts" 24
    (Metrics.parts_scanned_of ref_m ~root_oid:orders.Mpp_catalog.Table.oid);
  Support.check_rows_equal "pruned = unpruned" rows ref_rows

let test_selection_disabled_flag () =
  let catalog, storage, orders = partitioned_fixture () in
  let pred = Expr.lt (Expr.col (o_date orders)) (Expr.date "2012-02-01") in
  let plan =
    gather
      (Plan.Sequence
         [ Plan.partition_selector ~part_scan_id:1
             ~root_oid:orders.Mpp_catalog.Table.oid
             ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
           Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
             orders.Mpp_catalog.Table.oid ])
  in
  let _, m_on = Exec.run ~catalog ~storage plan in
  let _, m_off = Exec.run ~selection_enabled:false ~catalog ~storage plan in
  Alcotest.(check int) "enabled scans 1" 1
    (Metrics.parts_scanned_of m_on ~root_oid:orders.Mpp_catalog.Table.oid);
  Alcotest.(check int) "disabled scans all" 24
    (Metrics.parts_scanned_of m_off ~root_oid:orders.Mpp_catalog.Table.oid)

let test_guarded_scan_skips () =
  let catalog, storage, orders = partitioned_fixture () in
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  let leaves = Mpp_catalog.Partition.leaf_oids p in
  let pred = Expr.lt (Expr.col (o_date orders)) (Expr.date "2012-02-01") in
  (* Planner-style: selector (no child) + Append of guarded per-leaf scans *)
  let plan =
    gather
      (Plan.Sequence
         [ Plan.partition_selector ~part_scan_id:1
             ~root_oid:orders.Mpp_catalog.Table.oid
             ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
           Plan.Append
             (List.map (fun oid -> Plan.table_scan ~guard:1 ~rel:0 oid) leaves) ])
  in
  let rows, m = run ~catalog ~storage plan in
  Alcotest.(check int) "only January scanned" 1
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  Alcotest.(check bool) "rows produced" true (List.length rows > 0)

let test_channel () =
  let ch = Channel.create ~nsegments:4 in
  Channel.propagate ch ~segment:0 ~part_scan_id:1 42;
  Channel.propagate ch ~segment:0 ~part_scan_id:1 42;
  Channel.propagate ch ~segment:0 ~part_scan_id:1 7;
  Channel.propagate ch ~segment:1 ~part_scan_id:1 99;
  Alcotest.(check (list int)) "dedup + sort" [ 7; 42 ]
    (Channel.consume ch ~segment:0 ~part_scan_id:1);
  Alcotest.(check (list int)) "per-segment isolation" [ 99 ]
    (Channel.consume ch ~segment:1 ~part_scan_id:1);
  Alcotest.(check (list int)) "unknown id empty" []
    (Channel.consume ch ~segment:0 ~part_scan_id:9)

(* ---- DML ---- *)

let test_update () =
  let catalog, storage, orders = partitioned_fixture () in
  (* move every October-2013 order's amount to 0 *)
  let pred =
    Expr.between
      (Expr.col (o_date orders))
      (Expr.date "2013-10-01") (Expr.date "2013-10-31")
  in
  let child =
    Plan.Sequence
      [ Plan.partition_selector ~part_scan_id:1
          ~root_oid:orders.Mpp_catalog.Table.oid
          ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
        Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
          orders.Mpp_catalog.Table.oid ]
  in
  let update =
    Plan.Update
      { rel = 0; table_oid = orders.Mpp_catalog.Table.oid;
        set_exprs = [ (1, Expr.Const (Value.Float 0.0)) ]; child }
  in
  let before = Storage.count_table storage orders in
  let rows, m = run ~catalog ~storage update in
  let updated = match rows with [ r ] -> Value.to_int r.(0) | _ -> -1 in
  Alcotest.(check bool) "updated some rows" true (updated > 0);
  Alcotest.(check int) "metrics agree" updated m.Metrics.rows_updated;
  Alcotest.(check int) "row count preserved" before
    (Storage.count_table storage orders);
  (* all October amounts are now zero *)
  let check_pred =
    Expr.And [ pred; Expr.gt (Expr.col (Colref.make ~rel:0 ~index:1
                                          ~name:"amount" ~dtype:Value.Tfloat))
                 (Expr.Const (Value.Float 0.0)) ]
  in
  let verify =
    gather
      (Plan.Sequence
         [ Plan.partition_selector ~part_scan_id:1
             ~root_oid:orders.Mpp_catalog.Table.oid
             ~keys:[ o_date orders ] ~predicates:[ None ] ();
           Plan.dynamic_scan ~filter:check_pred ~rel:0 ~part_scan_id:1
             orders.Mpp_catalog.Table.oid ])
  in
  let leftover, _ = run ~catalog ~storage verify in
  Alcotest.(check int) "no non-zero October amounts left" 0
    (List.length leftover)

let test_update_moves_partition () =
  (* updating the partitioning key must move the tuple to the right leaf *)
  let catalog, storage, orders = partitioned_fixture () in
  ignore catalog;
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  let leaves = Array.of_list (Mpp_catalog.Partition.leaf_oids p) in
  let jan = leaves.(0) and dec = leaves.(23) in
  let before_jan = Storage.count storage ~oid:jan in
  let before_dec = Storage.count storage ~oid:dec in
  let pred = Expr.lt (Expr.col (o_date orders)) (Expr.date "2012-02-01") in
  let child =
    Plan.Sequence
      [ Plan.partition_selector ~part_scan_id:1
          ~root_oid:orders.Mpp_catalog.Table.oid
          ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
        Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
          orders.Mpp_catalog.Table.oid ]
  in
  let update =
    Plan.Update
      { rel = 0; table_oid = orders.Mpp_catalog.Table.oid;
        set_exprs = [ (2, Expr.date "2013-12-15") ]; child }
  in
  let _, _ = run ~catalog ~storage update in
  Alcotest.(check int) "January drained" 0 (Storage.count storage ~oid:jan);
  Alcotest.(check int) "December grew" (before_dec + before_jan)
    (Storage.count storage ~oid:dec)

let test_delete () =
  let catalog, storage, orders = partitioned_fixture () in
  let pred = Expr.ge (Expr.col (o_date orders)) (Expr.date "2013-07-01") in
  let child =
    Plan.Sequence
      [ Plan.partition_selector ~part_scan_id:1
          ~root_oid:orders.Mpp_catalog.Table.oid
          ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
        Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
          orders.Mpp_catalog.Table.oid ]
  in
  let before = Storage.count_table storage orders in
  let rows, _ =
    run ~catalog ~storage
      (Plan.Delete { rel = 0; table_oid = orders.Mpp_catalog.Table.oid; child })
  in
  let deleted = match rows with [ r ] -> Value.to_int r.(0) | _ -> -1 in
  Alcotest.(check bool) "deleted some" true (deleted > 0);
  Alcotest.(check int) "count dropped accordingly" (before - deleted)
    (Storage.count_table storage orders)

(* ---- EXPLAIN ANALYZE statistics ---- *)

module Node_stats = Mpp_exec.Node_stats
module Explain = Mpp_exec.Explain

(* Without filters every scan node emits exactly what it reads, so the
   per-node actual rows of the scans must sum to [Metrics.tuples_scanned]. *)
let test_stats_rows_match_metrics () =
  let catalog, storage, t, dim = fixture () in
  (* pre-order ids: 0 gather, 1 join, 2 scan dim, 3 scan t *)
  let plan =
    gather
      (Plan.hash_join ~kind:Plan.Inner
         ~pred:(Expr.eq (Expr.col dim_k) (Expr.col t_b))
         (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
         (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let _rows, m, st = Exec.run_analyze ~catalog ~storage plan in
  let scan_rows =
    Node_stats.total_rows ~pred:(fun id _ -> id = 2 || id = 3) st
  in
  Alcotest.(check int) "scan-node rows = Metrics.tuples_scanned"
    m.Metrics.tuples_scanned scan_rows;
  let g = Node_stats.node st 0 in
  Alcotest.(check int) "motion moved = emitted" g.Node_stats.rows
    g.Node_stats.tuples_moved

let test_analyze_partition_annotations () =
  let catalog, storage, orders = partitioned_fixture () in
  let pred =
    Expr.between
      (Expr.col (o_date orders))
      (Expr.date "2013-10-01") (Expr.date "2013-12-31")
  in
  (* pre-order ids: 0 gather, 1 sequence, 2 selector, 3 dynamic scan *)
  let plan =
    gather
      (Plan.Sequence
         [ Plan.partition_selector ~part_scan_id:1
             ~root_oid:orders.Mpp_catalog.Table.oid
             ~keys:[ o_date orders ] ~predicates:[ Some pred ] ();
           Plan.dynamic_scan ~filter:pred ~rel:0 ~part_scan_id:1
             orders.Mpp_catalog.Table.oid ])
  in
  let _rows, m, st = Exec.run_analyze ~catalog ~storage plan in
  let scan = Node_stats.node st 3 in
  Alcotest.(check int) "scan parts_scanned" 3 scan.Node_stats.parts_scanned;
  Alcotest.(check int) "scan parts_total" 24 scan.Node_stats.parts_total;
  let sel = Node_stats.node st 2 in
  Alcotest.(check int) "selector parts_selected" 3
    sel.Node_stats.parts_selected;
  Alcotest.(check int) "node stats agree with Metrics" 3
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  let txt = Explain.analyze plan st in
  let contains sub =
    let n = String.length sub and len = String.length txt in
    let rec go i = i + n <= len && (String.sub txt i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "renders parts=3/24" true (contains "parts=3/24");
  Alcotest.(check bool) "renders selected=3/24" true (contains "selected=3/24");
  Alcotest.(check bool) "renders actual rows" true (contains "actual rows=")

let test_run_without_stats_records_nothing () =
  let catalog, storage, t, _ = fixture () in
  let st = Node_stats.create () in
  let _ =
    Exec.run ~catalog ~storage
      (gather (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  Alcotest.(check int) "no collector attached, nothing recorded" 0
    (Node_stats.total_rows st)

(* Hash-join correctness against a naive reference computed directly over
   the generated data, for random contents and a random cluster size. *)
let prop_join_matches_reference =
  QCheck2.Test.make ~count:60 ~name:"hash join = naive reference join"
    QCheck2.Gen.(
      triple (int_range 1 6)
        (list_size (int_range 0 40) (int_range 0 9))
        (list_size (int_range 0 15) (int_range 0 9)))
    (fun (nsegments, t_keys, dim_keys) ->
      let catalog = Cat.create () in
      let t =
        Cat.add_table catalog ~name:"t"
          ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
          ~distribution:(Dist.Hashed [ 0 ]) ()
      in
      let dim =
        Cat.add_table catalog ~name:"dim"
          ~columns:[ ("k", Value.Tint); ("s", Value.Tstring) ]
          ~distribution:Dist.Replicated ()
      in
      let storage = Storage.create ~nsegments in
      List.iteri
        (fun i b -> Storage.insert storage t [| Value.Int i; Value.Int b |])
        t_keys;
      List.iteri
        (fun i k ->
          Storage.insert storage dim
            [| Value.Int k; Value.String (string_of_int i) |])
        dim_keys;
      let plan =
        gather
          (Plan.hash_join ~kind:Plan.Inner
             ~pred:(Expr.eq (Expr.col dim_k) (Expr.col t_b))
             (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
             (Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
      in
      let rows, _ = run ~catalog ~storage plan in
      (* reference: each equal-key (dim, t) pair exactly once, counted
         directly from the generated lists *)
      let expected =
        List.fold_left
          (fun acc k ->
            acc + List.length (List.filter (fun b -> b = k) t_keys))
          0 dim_keys
      in
      List.length rows = expected)

let () =
  Alcotest.run "exec"
    [ ("relational operators",
       [ Alcotest.test_case "scan + filter" `Quick test_scan_and_filter;
         Alcotest.test_case "inner hash join" `Quick test_hash_join_inner;
         Alcotest.test_case "nl join parity" `Quick test_nl_join_matches_hash_join;
         Alcotest.test_case "non-equi join" `Quick test_non_equi_join;
         Alcotest.test_case "semi join" `Quick test_semi_join;
         Alcotest.test_case "left outer join" `Quick test_left_outer_join;
         Alcotest.test_case "left outer: duplicate build rows" `Quick
           test_left_outer_duplicate_build_rows;
         Alcotest.test_case "grouped aggregation" `Quick test_agg_group_by;
         Alcotest.test_case "scalar agg over empty" `Quick test_agg_scalar_empty;
         Alcotest.test_case "sort + limit" `Quick test_sort_limit ]);
      ("motions",
       [ Alcotest.test_case "redistribute co-locates" `Quick
           test_redistribute_colocates;
         Alcotest.test_case "broadcast and gather" `Quick
           test_broadcast_and_gather;
         Alcotest.test_case "gather-one for replicated" `Quick test_gather_one ]);
      ("partition selection",
       [ Alcotest.test_case "static selector pipeline" `Quick
           test_static_selector_pipeline;
         Alcotest.test_case "selection-disabled flag" `Quick
           test_selection_disabled_flag;
         Alcotest.test_case "guarded scans (Planner DPE)" `Quick
           test_guarded_scan_skips;
         Alcotest.test_case "channel semantics" `Quick test_channel ]);
      ("explain analyze",
       [ Alcotest.test_case "scan rows sum to metrics" `Quick
           test_stats_rows_match_metrics;
         Alcotest.test_case "partition annotations" `Quick
           test_analyze_partition_annotations;
         Alcotest.test_case "no collector, no stats" `Quick
           test_run_without_stats_records_nothing ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_join_matches_reference ]);
      ("dml",
       [ Alcotest.test_case "update in place" `Quick test_update;
         Alcotest.test_case "update moves partitions" `Quick
           test_update_moves_partition;
         Alcotest.test_case "delete" `Quick test_delete ]) ]

(** Runtime-join-filter equivalence suite.

    The filters' core contract: both [Runtime_filter_build] and
    [Runtime_filter] are semantic no-ops.  The same plan executed with
    [runtime_filters:true] and [:false] must produce identical row
    multisets — serially and through the domain pool — and the off
    configuration must record zero filter work.  Checked deterministically
    over every workload query under both optimizers, and property-based
    over QCheck-generated join queries (the shapes the annotation rewrite
    targets: selective dimension builds probing fact columns off the
    partition key, plus DPE stars where the redundancy skip applies).

    Also pins the {!Mpp_exec.Metrics} extension: the four filter counters
    survive [create]/[merge]/[pp]/[to_json] and a JSON round-trip, and
    merging with a fresh record (an "old artifact" with all-zero filter
    fields) is the identity on them. *)

module W = Mpp_workload
module Exec = Mpp_exec.Exec
module Metrics = Mpp_exec.Metrics
module Json = Mpp_obs.Json

let env = lazy (W.Runner.setup_env ~scale:2 ~nsegments:4 ())

let exec_plan ?domains ~runtime_filters plan =
  let e = Lazy.force env in
  Exec.run ?domains ~runtime_filters ~catalog:e.W.Runner.catalog
    ~storage:e.W.Runner.storage plan

let sorted rows = List.sort compare rows

let check_no_filter_work what (m : Metrics.t) =
  Alcotest.(check int) (what ^ ": filter_built=0 when off") 0 m.Metrics.filter_built;
  Alcotest.(check int)
    (what ^ ": rows_filtered_scan=0 when off")
    0 m.Metrics.rows_filtered_scan;
  Alcotest.(check int)
    (what ^ ": rows_filtered_motion=0 when off")
    0 m.Metrics.rows_filtered_motion;
  Alcotest.(check int)
    (what ^ ": motion_rows_saved=0 when off")
    0 m.Metrics.motion_rows_saved

(* ------------------------------------------------------------------ *)
(* Deterministic: the full workload, both optimizers                    *)
(* ------------------------------------------------------------------ *)

let test_workload_equivalence () =
  List.iter
    (fun (qu : W.Queries.query) ->
      List.iter
        (fun (kname, kind) ->
          let what = Printf.sprintf "%s [%s]" qu.W.Queries.name kname in
          let plan = W.Runner.optimize_with (Lazy.force env) kind qu in
          let rows_on, _ = exec_plan ~runtime_filters:true plan in
          let rows_off, m_off = exec_plan ~runtime_filters:false plan in
          Alcotest.(check bool)
            (what ^ ": identical row multiset")
            true
            (sorted rows_on = sorted rows_off);
          check_no_filter_work what m_off)
        [ ("orca", W.Runner.Orca); ("planner", W.Runner.Legacy_planner) ])
    W.Queries.all

(* The RF-target queries actually exercise the machinery: at least one of
   them must build filters and drop probe rows, otherwise the equivalence
   above is vacuous. *)
let test_filters_actually_fire () =
  let qu = W.Queries.find "ss_customer_rf_scan" in
  let plan = W.Runner.optimize_with (Lazy.force env) W.Runner.Orca qu in
  let _, m = exec_plan ~runtime_filters:true plan in
  Alcotest.(check bool) "filters built" true (m.Metrics.filter_built > 0);
  Alcotest.(check bool)
    "probe rows dropped at the scan" true
    (m.Metrics.rows_filtered_scan > 0)

(* ------------------------------------------------------------------ *)
(* Property-based: random join queries, serial and parallel             *)
(* ------------------------------------------------------------------ *)

(* Join shapes the annotation targets, over the demo schema: a selective
   dimension (customer state, item category, warehouse state) joined to a
   fact on a non-partition key, optionally with a date_dim DPE arm (where
   the streaming-selection redundancy skip kicks in). *)
let rf_sql_gen : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let dim_joins =
    [ ("store_sales", "ss_customer", "ss_price", "customer c", "c.c_id",
       "c.c_state",
       [ "CA"; "NY"; "TX"; "WA"; "OR"; "MA"; "IL"; "FL" ]);
      ("web_sales", "ws_customer", "ws_price", "customer c", "c.c_id",
       "c.c_state",
       [ "CA"; "NY"; "TX"; "WA"; "OR"; "MA"; "IL"; "FL" ]);
      ("store_sales", "ss_item", "ss_qty", "item i", "i.i_id",
       "i.i_category",
       [ "books"; "music"; "electronics"; "home"; "sports" ]);
      ("inventory", "inv_warehouse", "inv_qty", "warehouse w", "w.w_id",
       "w.w_state", [ "CA"; "NY"; "TX"; "WA" ]) ]
  in
  let agg = oneofl [ "count(*)"; "sum(%m)"; "avg(%m)"; "max(%m)" ] in
  let* fact, fkey, measure, dim, dkey, dcol, vals = oneofl dim_joins in
  let* v = oneofl vals in
  let* a = agg in
  let agg_sql =
    match a with
    | "count(*)" -> "count(*)"
    | s ->
        (* substitute %m with the fact measure *)
        let i = String.index s '%' in
        String.sub s 0 i ^ "f." ^ measure
        ^ String.sub s (i + 2) (String.length s - i - 2)
  in
  let* with_date = bool in
  let* y = int_range 2011 2013 in
  return
    (Printf.sprintf "SELECT %s FROM %s f, %s%s WHERE f.%s = %s AND %s = '%s'%s"
       agg_sql fact dim
       (if with_date then ", date_dim d" else "")
       fkey dkey dcol v
       (if with_date then
          Printf.sprintf " AND f.%s = d.d_date AND d.d_year = %d"
            (match fact with
            | "store_sales" -> "ss_sold_date"
            | "inventory" -> "inv_date"
            | _ -> "ws_sold_date_id")
          y
        else ""))

(* web_sales joins date_dim on the surrogate int, not d_date: patch the
   generated predicate for that one fact *)
let fixup sql =
  let target = "f.ws_sold_date_id = d.d_date" in
  let repl = "f.ws_sold_date_id = d.d_date_id" in
  let tl = String.length target in
  let buf = Buffer.create (String.length sql) in
  let rec go i =
    if i >= String.length sql then ()
    else if
      i + tl <= String.length sql
      && String.sub sql i tl = target
      && not (i + tl < String.length sql && sql.[i + tl] = '_')
    then (
      Buffer.add_string buf repl;
      go (i + tl))
    else (
      Buffer.add_char buf sql.[i];
      go (i + 1))
  in
  go 0;
  Buffer.contents buf

let equivalence_prop sql =
  let sql = fixup sql in
  let e = Lazy.force env in
  let qu = W.Queries.q "rf_prop" W.Queries.Equal sql in
  List.for_all
    (fun kind ->
      let plan = W.Runner.optimize_with e kind qu in
      let rows_on, _ = exec_plan ~runtime_filters:true plan in
      let rows_off, m_off = exec_plan ~runtime_filters:false plan in
      let rows_par_on, _ = exec_plan ~domains:4 ~runtime_filters:true plan in
      let base = sorted rows_off in
      sorted rows_on = base
      && sorted rows_par_on = base
      && m_off.Metrics.filter_built = 0
      && m_off.Metrics.rows_filtered_scan = 0
      && m_off.Metrics.rows_filtered_motion = 0)
    [ W.Runner.Orca; W.Runner.Legacy_planner ]

let equivalence_test =
  QCheck2.Test.make
    ~name:"random join queries: filters on = off, serial = parallel"
    ~count:60
    ~print:(fun s -> s)
    rf_sql_gen equivalence_prop

(* ------------------------------------------------------------------ *)
(* Metrics: the four new counters through the whole surface             *)
(* ------------------------------------------------------------------ *)

let populated () =
  let m = Metrics.create () in
  m.Metrics.filter_built <- 3;
  m.Metrics.rows_filtered_scan <- 1000;
  m.Metrics.rows_filtered_motion <- 250;
  m.Metrics.motion_rows_saved <- 750;
  m.Metrics.tuples_scanned <- 9;
  m

let int_field name json =
  match Option.bind (Json.member name json) Json.to_int_opt with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "field %s missing or not an int" name)

let test_metrics_counters () =
  let m = populated () in
  (* merge with a fresh record (an artifact from before the counters
     existed serializes exactly like this) is the identity *)
  let merged = Metrics.merge m (Metrics.create ()) in
  Alcotest.(check int) "merge keeps filter_built" 3 merged.Metrics.filter_built;
  Alcotest.(check int)
    "merge keeps rows_filtered_scan" 1000 merged.Metrics.rows_filtered_scan;
  Alcotest.(check int)
    "merge keeps rows_filtered_motion" 250 merged.Metrics.rows_filtered_motion;
  Alcotest.(check int)
    "merge keeps motion_rows_saved" 750 merged.Metrics.motion_rows_saved;
  (* merge sums *)
  let doubled = Metrics.merge m m in
  Alcotest.(check int) "merge sums" 2000 doubled.Metrics.rows_filtered_scan;
  (* JSON round-trip: serialize, reparse, counters intact *)
  let json =
    match Json.parse_opt (Json.to_string (Metrics.to_json m)) with
    | Some j -> j
    | None -> Alcotest.fail "metrics JSON did not reparse"
  in
  Alcotest.(check int) "json filter_built" 3 (int_field "filter_built" json);
  Alcotest.(check int)
    "json rows_filtered_scan" 1000 (int_field "rows_filtered_scan" json);
  Alcotest.(check int)
    "json rows_filtered_motion" 250 (int_field "rows_filtered_motion" json);
  Alcotest.(check int)
    "json motion_rows_saved" 750 (int_field "motion_rows_saved" json);
  (* pp names every counter *)
  let rendered = Format.asprintf "%a" Metrics.pp m in
  List.iter
    (fun name ->
      let re = name in
      let rec find i =
        i + String.length re <= String.length rendered
        && (String.sub rendered i (String.length re) = re || find (i + 1))
      in
      Alcotest.(check bool) ("pp mentions " ^ name) true (find 0))
    [ "filter_built"; "rows_filtered_scan"; "rows_filtered_motion";
      "motion_rows_saved" ]

let () =
  Alcotest.run "runtime_filters"
    [ ("equivalence",
       [ Alcotest.test_case "workload on=off, both optimizers" `Slow
           test_workload_equivalence;
         Alcotest.test_case "filters fire on RF targets" `Quick
           test_filters_actually_fire ]);
      ("property", [ QCheck_alcotest.to_alcotest ~long:true equivalence_test ]);
      ("metrics", [ Alcotest.test_case "counters everywhere" `Quick
                      test_metrics_counters ]) ]

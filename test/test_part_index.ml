(** The partition-selection index vs the legacy oracle.

    {!Partition.Index} rewrites [f_T] (route) and [f*_T] (select) on
    sorted-boundary / hash lookups with bitset intersection; the pre-index
    linear implementations survive as [route_legacy] / [select_legacy] /
    [select_oids_legacy].  This suite pins the two down against each other:

    - deterministic equivalence on the recurring schemas (monthly ranges,
      two-level month x region, default arms, NULL keys, OID lookup);
    - randomized 1-3-level layouts (range + categorical arms, optional
      default arm at a random position, overlapping restriction sets,
      Int/Float key mixing) where indexed select/route must equal the
      oracle exactly, 1200+ cases each;
    - {!Bitset} word-level invariants (ghost bits, ordering);
    - {!Channel} dedup: pushing the same OID twice — singly or via the
      batched [propagate_set] — must not double-count. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Bitset = Mpp_catalog.Bitset
module Channel = Mpp_exec.Channel

let d s = Value.Date (Date.of_string s)

let oids_of leaves = List.map (fun (lf : Part.leaf) -> lf.Part.leaf_oid) leaves

let leaf_oid_opt = Option.map (fun (lf : Part.leaf) -> lf.Part.leaf_oid)

(* Indexed select / count / bits must agree with the legacy oracle on this
   restriction array, oid for oid. *)
let check_select what p restrictions =
  let ix = Part.Index.of_partitioning p in
  let legacy = Part.select_oids_legacy p restrictions in
  Alcotest.(check (list int))
    (what ^ ": indexed select = legacy")
    legacy
    (Part.Index.select_oids ix restrictions);
  Alcotest.(check (list int))
    (what ^ ": top-level select delegates to index")
    legacy
    (Part.select_oids p restrictions);
  Alcotest.(check int)
    (what ^ ": count_selected")
    (List.length legacy)
    (Part.Index.count_selected ix restrictions);
  let bits = Part.Index.select_bits ix restrictions in
  Alcotest.(check int)
    (what ^ ": select_bits cardinal")
    (List.length legacy) (Bitset.cardinal bits)

let check_route what p keys =
  Alcotest.(check (option int))
    (what ^ ": indexed route = legacy")
    (leaf_oid_opt (Part.route_legacy p keys))
    (leaf_oid_opt (Part.route p keys))

(* ---- deterministic layouts ---- *)

let test_monthly_equivalence () =
  let _, orders = Support.orders_schema () in
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  let set iv = Interval.Set.of_interval_opt iv in
  List.iter
    (fun (what, r) -> check_select what p [| r |])
    [ ("no restriction", None);
      ("empty set", Some Interval.Set.empty);
      ("full set", Some Interval.Set.full);
      ("point in range", Some (Interval.Set.point (d "2013-10-15")));
      ("point out of range", Some (Interval.Set.point (d "2030-01-01")));
      ("half-open range",
       Some (set (Interval.closed_open (d "2012-03-01") (d "2012-06-15"))));
      ("at_most", Some (Interval.Set.singleton (Interval.at_most (d "2012-02-10"))));
      ("at_least", Some (Interval.Set.singleton (Interval.at_least (d "2013-11-20"))));
      ("union of two ranges",
       Some
         (Interval.Set.union
            (set (Interval.closed_open (d "2012-01-15") (d "2012-02-15")))
            (set (Interval.closed_open (d "2013-05-01") (d "2013-07-01"))))) ];
  for day = 0 to 729 do
    check_route "monthly date" p
      [| Value.Date (Date.add_days (Date.of_ymd 2012 1 1) day) |]
  done;
  check_route "monthly NULL key" p [| Value.Null |];
  check_route "monthly out of range" p [| d "2030-01-01" |]

let test_two_level_equivalence () =
  let _, orders = Support.multilevel_schema () in
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  let date_r = Interval.Set.of_interval_opt
      (Interval.closed_open (d "2012-02-01") (d "2012-05-01")) in
  List.iter
    (fun (what, r) -> check_select what p r)
    [ ("both levels", [| Some date_r; Some (Interval.Set.point (Value.String "east")) |]);
      ("level 1 only", [| Some date_r; None |]);
      ("level 2 only", [| None; Some (Interval.Set.point (Value.String "west")) |]);
      ("unknown region", [| None; Some (Interval.Set.point (Value.String "north")) |]);
      ("level 2 empty", [| Some date_r; Some Interval.Set.empty |]) ];
  List.iter
    (fun keys -> check_route "two-level" p keys)
    [ [| d "2012-03-15"; Value.String "east" |];
      [| d "2012-03-15"; Value.String "north" |];
      [| d "2030-01-01"; Value.String "west" |];
      [| Value.Null; Value.String "east" |];
      [| d "2012-03-15"; Value.Null |] ]

(* int ranges + default arm at level 1, categorical + default at level 2:
   the default-arm covered-set precomputation against the legacy rescan. *)
let default_layout () =
  let next = ref 0 in
  let alloc_oid () = incr next; !next in
  Part.multi_level ~alloc_oid ~table_name:"t"
    [ ({ Part.key_index = 0; key_name = "a"; scheme = Part.Range },
       Part.int_ranges ~start:0 ~width:10 ~count:4 @ [ Part.Default ]);
      ({ Part.key_index = 1; key_name = "b"; scheme = Part.Categorical },
       Part.categorical [ [ Value.Int 1 ]; [ Value.Int 2; Value.Int 3 ] ]
       @ [ Part.Default ]) ]

let test_default_arm_equivalence () =
  let p = default_layout () in
  let set iv = Interval.Set.of_interval_opt iv in
  List.iter
    (fun (what, r) -> check_select what p r)
    [ ("range into default",
       [| Some (set (Interval.closed_open (Value.Int 35) (Value.Int 60))); None |]);
      ("all defaults", [| Some (Interval.Set.point (Value.Int 99)); Some (Interval.Set.point (Value.Int 7)) |]);
      ("covered values only",
       [| Some (set (Interval.closed_open (Value.Int 0) (Value.Int 40)));
          Some (Interval.Set.of_list [ Interval.point (Value.Int 1); Interval.point (Value.Int 3) ]) |]);
      ("unbounded below", [| Some (Interval.Set.singleton (Interval.less_than (Value.Int 5))); None |]) ];
  List.iter
    (fun keys -> check_route "default arms" p keys)
    [ [| Value.Int 15; Value.Int 2 |];
      [| Value.Int 15; Value.Int 9 |];   (* level-2 default *)
      [| Value.Int 99; Value.Int 1 |];   (* level-1 default *)
      [| Value.Int 99; Value.Int 9 |];   (* both defaults *)
      [| Value.Null; Value.Int 1 |];     (* NULL -> default *)
      [| Value.Int 15; Value.Null |];
      [| Value.Null; Value.Null |];
      [| Value.Float 15.0; Value.Int 2 |] (* Float key vs Int arms *) ]

let test_find_leaf_hash () =
  let _, orders = Support.orders_schema () in
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  (* inline linear-scan oracle (the library's own linear lookup is gone;
     the hash answer is pinned against first principles instead) *)
  let linear (p : Part.t) oid =
    List.find_opt
      (fun (lf : Part.leaf) -> lf.Part.leaf_oid = oid)
      (Array.to_list p.Part.leaves)
  in
  List.iter
    (fun oid ->
      Alcotest.(check (option int))
        (Printf.sprintf "find_leaf %d = linear scan" oid)
        (leaf_oid_opt (linear p oid))
        (leaf_oid_opt (Part.find_leaf p oid)))
    (Part.leaf_oids p);
  Alcotest.(check (option int)) "unknown oid" None
    (leaf_oid_opt (Part.find_leaf p 999_999))

(* ---- randomized layouts: the oracle property ---- *)

let layout_and_restrictions_gen :
    (Part.t * Interval.Set.t option array) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let small_int = int_range (-10) 35 in
  let point_arm =
    map
      (fun vs ->
        Part.Cset (Interval.Set.of_list (List.map (fun i -> Interval.point (Value.Int i)) vs)))
      (list_size (int_range 1 3) small_int)
  in
  let range_arm =
    map
      (fun (a, w) ->
        Part.Cset
          (Interval.Set.of_interval_opt
             (Interval.closed_open (Value.Int a) (Value.Int (a + 1 + w)))))
      (pair (int_range (-10) 25) (int_range 0 8))
  in
  let level idx =
    let* scheme = oneofl [ Part.Range; Part.Categorical ] in
    let arm =
      match scheme with
      | Part.Range -> oneof [ range_arm; range_arm; point_arm ]
      | Part.Categorical -> point_arm
    in
    let* arms = list_size (int_range 1 5) arm in
    let* with_default = bool in
    let* pos = int_range 0 (List.length arms) in
    let constrs =
      if with_default then
        List.filteri (fun i _ -> i < pos) arms
        @ (Part.Default :: List.filteri (fun i _ -> i >= pos) arms)
      else arms
    in
    return
      ( { Part.key_index = idx; key_name = Printf.sprintf "k%d" idx; scheme },
        constrs )
  in
  let restriction =
    frequency
      [ (2, return None);
        (1, return (Some Interval.Set.empty));
        (3, map (fun s -> Some s) Support.interval_set_gen);
        (2, map (fun i -> Some (Interval.Set.point (Value.Int i))) small_int);
        (1, map (fun i -> Some (Interval.Set.point (Value.Float (float_of_int i))))
             small_int);
        (1, map (fun i -> Some (Interval.Set.singleton (Interval.at_most (Value.Int i))))
             small_int) ]
  in
  let* nlevels = int_range 1 3 in
  let* levels = flatten_l (List.init nlevels level) in
  let* restrictions = array_size (return nlevels) restriction in
  let next = ref 0 in
  let alloc_oid () = incr next; !next in
  return (Part.multi_level ~alloc_oid ~table_name:"t" levels, restrictions)

let prop_select_matches_oracle =
  QCheck2.Test.make ~count:1500
    ~name:"indexed select = legacy oracle (randomized layouts)"
    layout_and_restrictions_gen
    (fun (p, restrictions) ->
      let ix = Part.Index.of_partitioning p in
      let legacy = Part.select_oids_legacy p restrictions in
      Part.Index.select_oids ix restrictions = legacy
      && Part.Index.count_selected ix restrictions = List.length legacy
      && oids_of (Part.Index.select ix restrictions) = legacy)

let key_value_gen =
  QCheck2.Gen.(
    frequency
      [ (1, return Value.Null);
        (5, map (fun i -> Value.Int i) (int_range (-12) 40));
        (2, map (fun i -> Value.Float (float_of_int i)) (int_range (-12) 40));
        (1, map (fun i -> Value.Float (float_of_int i +. 0.5)) (int_range (-12) 40));
        (1, return (Value.Int 100_000)) ])

let prop_route_matches_oracle =
  QCheck2.Test.make ~count:1500
    ~name:"indexed route = legacy oracle (randomized layouts, NULL keys)"
    QCheck2.Gen.(
      let* p, _ = layout_and_restrictions_gen in
      let* keys = array_size (return (Part.nlevels p)) key_value_gen in
      return (p, keys))
    (fun (p, keys) ->
      leaf_oid_opt (Part.route p keys) = leaf_oid_opt (Part.route_legacy p keys))

(* ---- bitsets ---- *)

let test_bitset_basics () =
  let b = Bitset.create 70 in
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal b);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty b);
  Bitset.set_list b [ 0; 63; 64; 69 ];
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list ascending" [ 0; 63; 64; 69 ]
    (Bitset.to_list b);
  Alcotest.(check (option int)) "first_set" (Some 0) (Bitset.first_set b);
  let f = Bitset.full 70 in
  Alcotest.(check int) "full cardinal masks ghost bits" 70 (Bitset.cardinal f);
  Bitset.inter_into ~into:f b;
  Alcotest.(check bool) "inter = smaller set" true (Bitset.equal f b);
  let u = Bitset.create 70 in
  Bitset.set u 7;
  Bitset.union_into ~into:u b;
  Alcotest.(check (list int)) "union" [ 0; 7; 63; 64; 69 ] (Bitset.to_list u);
  Alcotest.(check bool) "mem in" true (Bitset.mem u 7);
  Alcotest.(check bool) "mem out" false (Bitset.mem u 8);
  Alcotest.(check bool) "mem out of range" false (Bitset.mem u 700);
  let acc = Bitset.fold_right_set (fun i acc -> i :: acc) u [] in
  Alcotest.(check (list int)) "fold_right_set ascending list" [ 0; 7; 63; 64; 69 ] acc

(* ---- channel dedup ---- *)

let test_channel_dedup () =
  let ch = Channel.create ~nsegments:2 in
  Channel.propagate ch ~segment:0 ~part_scan_id:1 42;
  Channel.propagate ch ~segment:0 ~part_scan_id:1 42;
  Channel.propagate_set ch ~segment:0 ~part_scan_id:1 [ 7; 42; 7; 9 ];
  Channel.propagate_set ch ~segment:0 ~part_scan_id:1 [ 9; 42 ];
  Alcotest.(check (list int)) "consume: unique sorted OIDs" [ 7; 9; 42 ]
    (Channel.consume ch ~segment:0 ~part_scan_id:1);
  Alcotest.(check bool) "mem sees batched push" true
    (Channel.mem ch ~segment:0 ~part_scan_id:1 9);
  Alcotest.(check (list int)) "other segment unaffected" []
    (Channel.consume ch ~segment:1 ~part_scan_id:1);
  Alcotest.(check (list int)) "other scan id unaffected" []
    (Channel.consume ch ~segment:0 ~part_scan_id:2);
  Channel.propagate_set ch ~segment:1 ~part_scan_id:3 [];
  Alcotest.(check (list int)) "empty batch is a no-op" []
    (Channel.consume ch ~segment:1 ~part_scan_id:3)

let () =
  Alcotest.run "part_index"
    [ ("deterministic equivalence",
       [ Alcotest.test_case "monthly ranges" `Quick test_monthly_equivalence;
         Alcotest.test_case "two-level month x region" `Quick
           test_two_level_equivalence;
         Alcotest.test_case "default arms" `Quick test_default_arm_equivalence;
         Alcotest.test_case "find_leaf OID hash" `Quick test_find_leaf_hash ]);
      ("oracle properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_select_matches_oracle; prop_route_matches_oracle ]);
      ("bitset", [ Alcotest.test_case "word-level ops" `Quick test_bitset_basics ]);
      ("channel",
       [ Alcotest.test_case "OID dedup" `Quick test_channel_dedup ]) ]

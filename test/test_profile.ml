(** Unit suite for the PR-6 query profiler: skew and estimate-error math
    under a deterministic clock, the Chrome/Perfetto trace-event export
    shape (valid JSON, monotone timestamps, one named track per domain),
    domain-safe [Obs] counters under a parallel hammer, and the dpool /
    channel accounting counters. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Est = Mpp_plan.Est
module Node_stats = Mpp_exec.Node_stats
module Dpool = Mpp_exec.Dpool
module Channel = Mpp_exec.Channel
module Obs = Mpp_obs.Obs
module Trace = Mpp_obs.Trace
module Json = Mpp_obs.Json

(* A fake clock advancing a fixed step per read: fully deterministic
   timings for everything below. *)
let ticking ?(step = 0.001) () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := !t +. step;
    v

(* ---- skew math ---- *)

let test_skew_math () =
  let st = Node_stats.create ~clock:(ticking ()) ~nsegments:4 () in
  Alcotest.(check int) "nsegments" 4 (Node_stats.nsegments st);
  let n = Node_stats.node st 0 in
  (* balanced: 25 rows on each of 4 segments *)
  Array.iteri (fun i _ -> n.Node_stats.seg_rows.(i) <- 25) n.Node_stats.seg_rows;
  Alcotest.(check (float 1e-9)) "balanced skew" 1.0 (Node_stats.skew n);
  let s = Node_stats.rows_summary n in
  Alcotest.(check int) "balanced min" 25 s.Node_stats.seg_min;
  Alcotest.(check int) "balanced max" 25 s.Node_stats.seg_max;
  Alcotest.(check (float 1e-9)) "balanced mean" 25.0 s.Node_stats.seg_mean;
  (* fully concentrated: all 100 rows on one segment → skew = nsegments *)
  let c = Node_stats.node st 1 in
  c.Node_stats.seg_rows.(2) <- 100;
  Alcotest.(check (float 1e-9)) "concentrated skew" 4.0 (Node_stats.skew c);
  (* empty node: no rows anywhere → skew defined as 1.0, not NaN *)
  let e = Node_stats.node st 2 in
  Alcotest.(check (float 1e-9)) "empty skew" 1.0 (Node_stats.skew e);
  (* 2:1 imbalance: mean 75, max 150 → 2.0 *)
  let h = Node_stats.node st 3 in
  h.Node_stats.seg_rows.(0) <- 150;
  h.Node_stats.seg_rows.(1) <- 50;
  h.Node_stats.seg_rows.(2) <- 50;
  h.Node_stats.seg_rows.(3) <- 50;
  Alcotest.(check (float 1e-9)) "2x skew" 2.0 (Node_stats.skew h)

(* ---- estimate error-factor math ---- *)

let test_error_factor () =
  let chk what ~est ~actual expect =
    Alcotest.(check (float 1e-9))
      what expect
      (Est.error_factor ~est ~actual)
  in
  chk "exact" ~est:100.0 ~actual:100 1.0;
  chk "2x over" ~est:200.0 ~actual:100 2.0;
  chk "4x under" ~est:25.0 ~actual:100 4.0;
  (* both sides clamp to >= 1 row: a zero never divides *)
  chk "zero actual" ~est:10.0 ~actual:0 10.0;
  chk "zero estimate" ~est:0.0 ~actual:10 10.0;
  chk "both zero" ~est:0.0 ~actual:0 1.0

let test_est_of_plan () =
  let cat = Mpp_catalog.Catalog.create () in
  let t =
    Mpp_catalog.Catalog.add_table cat ~name:"t"
      ~columns:[ ("a", Value.Tint) ]
      ~distribution:(Mpp_catalog.Distribution.Hashed [ 0 ]) ()
  in
  let scan = Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid in
  let plan = Plan.motion Plan.Gather scan in
  (* pre-order: 0 = Motion, 1 = scan *)
  let est =
    Est.of_plan
      ~estimate:(function Plan.Motion _ -> 7.0 | _ -> 42.0)
      plan
  in
  Alcotest.(check (option (float 1e-9))) "root" (Some 7.0) (Est.find est 0);
  Alcotest.(check (option (float 1e-9))) "child" (Some 42.0) (Est.find est 1);
  Alcotest.(check (option (float 1e-9))) "out of range" None (Est.find est 2);
  (* a throwing or NaN estimator yields no estimate, not a crash *)
  let bad =
    Est.of_plan
      ~estimate:(function
        | Plan.Motion _ -> failwith "boom" | _ -> Float.nan)
      plan
  in
  Alcotest.(check (option (float 1e-9))) "raise -> None" None (Est.find bad 0);
  Alcotest.(check (option (float 1e-9))) "nan -> None" None (Est.find bad 1);
  Alcotest.(check (option (float 1e-9)))
    "none is empty" None
    (Est.find Est.none 0)

(* ---- Perfetto trace export shape ---- *)

let members_exn what k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %s" what k

let as_num what = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> Alcotest.failf "%s: not numeric" what

let test_trace_export_shape () =
  let clock = ticking ~step:0.5 () in
  let tr = Trace.create ~clock () in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  Trace.declare_track tr ~tid:0 "coordinator";
  Trace.declare_track tr ~tid:2 "domain-0";
  Trace.declare_track tr ~tid:3 "domain-1";
  Trace.declare_track tr ~tid:3 "domain-1" (* idempotent *);
  (* emit out of order: export must still be ts-sorted *)
  Trace.emit tr ~tid:3 ~name:"late" ~start:10.0 ~stop:11.0 ();
  Trace.emit tr ~tid:2 ~name:"early" ~start:1.0 ~stop:2.5 ();
  Trace.emit tr ~tid:0 ~name:"backwards" ~start:5.0 ~stop:4.0 ()
  (* negative interval clamps to dur 0 *);
  Alcotest.(check int) "event count" 3 (Trace.event_count tr);
  Alcotest.(check (list int)) "track ids" [ 0; 2; 3 ] (Trace.track_ids tr);
  (* the export round-trips through our own parser *)
  let json = Json.parse (Json.to_string (Trace.to_json tr)) in
  let events =
    match members_exn "export" "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  let meta, xs =
    List.partition
      (fun e -> Json.member "ph" e = Some (Json.String "M"))
      events
  in
  (* one process_name + one thread_name per declared track, and metadata
     precedes every X event *)
  Alcotest.(check int) "metadata events" 4 (List.length meta);
  let names =
    List.filter_map
      (fun e ->
        if Json.member "name" e = Some (Json.String "thread_name") then
          Option.bind (Json.member "args" e) (Json.member "name")
        else None)
      meta
  in
  Alcotest.(check (list string))
    "one named track per domain"
    [ "coordinator"; "domain-0"; "domain-1" ]
    (List.map (function Json.String s -> s | _ -> "?") names);
  (match events with
  | first :: _ ->
      Alcotest.(check bool)
        "metadata first" true
        (Json.member "ph" first = Some (Json.String "M"))
  | [] -> Alcotest.fail "empty export");
  Alcotest.(check int) "X events" 3 (List.length xs);
  (* ts are relative to the trace epoch, microseconds, monotone *)
  let ts = List.map (fun e -> as_num "ts" (members_exn "X" "ts" e)) xs in
  Alcotest.(check bool)
    "monotone ts" true
    (List.sort compare ts = ts);
  List.iter
    (fun t -> Alcotest.(check bool) "non-negative ts" true (t >= 0.0))
    ts;
  let by_name n =
    List.find
      (fun e -> Json.member "name" e = Some (Json.String n))
      xs
  in
  Alcotest.(check (float 1e-6))
    "dur in us"
    1.5e6
    (as_num "dur" (members_exn "early" "dur" (by_name "early")));
  Alcotest.(check (float 1e-6))
    "negative interval clamps" 0.0
    (as_num "dur" (members_exn "backwards" "dur" (by_name "backwards")));
  (* reset drops everything *)
  Trace.reset tr;
  Alcotest.(check int) "reset events" 0 (Trace.event_count tr);
  Alcotest.(check (list int)) "reset tracks" [] (Trace.track_ids tr)

let test_trace_null_and_obs_spans () =
  (* the null collector is free and inert *)
  Trace.emit Trace.null ~tid:0 ~name:"x" ~start:0.0 ~stop:1.0 ();
  Trace.declare_track Trace.null ~tid:0 "x";
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Alcotest.(check int) "null events" 0 (Trace.event_count Trace.null);
  (* Obs span trees render as nested events on one track *)
  let clock = ticking ~step:0.25 () in
  let sink = Obs.create ~clock () in
  Obs.span sink "optimize" (fun () ->
      Obs.span sink "explore" (fun () -> ());
      Obs.span sink "implement" (fun () -> ()));
  let tr = Trace.create ~clock () in
  Trace.declare_track tr ~tid:1 "optimizer";
  Trace.add_obs_spans tr ~tid:1 (Obs.root_spans sink);
  Alcotest.(check int) "span events" 3 (Trace.event_count tr);
  let json = Trace.to_json tr in
  let events =
    match members_exn "export" "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  let xs =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.String "X"))
      events
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "span events on the optimizer track" true
        (Json.member "tid" e = Some (Json.Int 1)))
    xs

(* ---- trace events from a real parallel execution ---- *)

let test_trace_from_parallel_run () =
  let env = Mpp_workload.Runner.setup_env ~scale:1 ~nsegments:4 () in
  let q = List.hd Mpp_workload.Queries.all in
  let plan =
    Mpp_workload.Runner.optimize_with env Mpp_workload.Runner.Orca q
  in
  let trace = Trace.create () in
  let _rows, _m, _st =
    Mpp_exec.Exec.run_analyze ~trace ~domains:4
      ~catalog:env.Mpp_workload.Runner.catalog
      ~storage:env.Mpp_workload.Runner.storage plan
  in
  Alcotest.(check bool)
    "events recorded" true
    (Trace.event_count trace > 0);
  (* coordinator track plus one per pool domain, all declared up front *)
  let expect = Mpp_exec.Exec.coordinator_tid :: List.init 4 Mpp_exec.Exec.domain_tid in
  Alcotest.(check (list int))
    "declared tracks" (List.sort compare expect)
    (Trace.track_ids trace);
  (* export parses and is ts-monotone *)
  let json = Json.parse (Json.to_string (Trace.to_json trace)) in
  let xs =
    match members_exn "export" "traceEvents" json with
    | Json.List l ->
        List.filter
          (fun e -> Json.member "ph" e = Some (Json.String "X"))
          l
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  let ts = List.map (fun e -> as_num "ts" (members_exn "X" "ts" e)) xs in
  Alcotest.(check bool) "monotone ts" true (List.sort compare ts = ts)

(* ---- Obs counters under the domain pool ---- *)

let test_obs_parallel_hammer () =
  let sink = Obs.create () in
  let pool = Dpool.get ~domains:4 in
  let tasks = 64 and per_task = 500 in
  Dpool.parallel_for pool tasks (fun i ->
      for _ = 1 to per_task do
        Obs.incr sink "hammer.hits"
      done;
      Obs.add sink (Printf.sprintf "hammer.task%d" (i mod 4)) 1);
  (* every increment from every domain is accounted for *)
  Alcotest.(check int)
    "no lost increments" (tasks * per_task)
    (Obs.counter sink "hammer.hits");
  let spread =
    List.fold_left ( + ) 0
      (List.map
         (fun i -> Obs.counter sink (Printf.sprintf "hammer.task%d" i))
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "per-task counters sum" tasks spread;
  (* merged view also reaches the sorted listing *)
  Alcotest.(check bool)
    "counters lists the merged total" true
    (List.mem ("hammer.hits", tasks * per_task) (Obs.counters sink))

(* ---- dpool busy/wait accounting ---- *)

let test_dpool_accounting () =
  let pool = Dpool.create 3 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "off by default" false (Dpool.accounting pool);
      Dpool.set_accounting pool true;
      Dpool.reset_stats pool;
      let total = Atomic.make 0 in
      Dpool.parallel_for pool 32 (fun i -> ignore (Atomic.fetch_and_add total i));
      Dpool.parallel_for pool 2 (fun _ -> ());
      Alcotest.(check int) "jobs submitted" 2 (Dpool.jobs_submitted pool);
      Alcotest.(check int) "max tasks" 32 (Dpool.max_tasks pool);
      let stats = Dpool.stats pool in
      Alcotest.(check int) "one counter slot per domain" 3 (Array.length stats);
      let tasks =
        Array.fold_left (fun a d -> a + d.Dpool.tasks) 0 stats
      in
      Alcotest.(check int) "every task accounted" 34 tasks;
      Array.iter
        (fun d ->
          Alcotest.(check bool) "busy time non-negative" true (d.Dpool.busy_s >= 0.0);
          Alcotest.(check bool) "wait time non-negative" true (d.Dpool.wait_s >= 0.0))
        stats;
      (* JSON export carries one object per domain *)
      (match Json.member "domains" (Dpool.stats_to_json pool) with
      | Some (Json.List l) ->
          Alcotest.(check int) "json domains" 3 (List.length l)
      | _ -> Alcotest.fail "dpool stats json: domains missing");
      Dpool.reset_stats pool;
      Alcotest.(check int) "reset clears" 0 (Dpool.jobs_submitted pool))

(* ---- channel occupancy counters ---- *)

let test_channel_occupancy () =
  let ch = Channel.create ~nsegments:2 in
  Channel.propagate ch ~segment:0 ~part_scan_id:1 100;
  Channel.propagate ch ~segment:0 ~part_scan_id:1 100 (* dedup hit *);
  Channel.propagate_set ch ~segment:0 ~part_scan_id:1 [ 100; 101; 101; 102 ];
  Channel.propagate ch ~segment:1 ~part_scan_id:1 100;
  let s0 = Channel.seg_stats ch ~segment:0 in
  Alcotest.(check int) "seg0 offered" 6 s0.Channel.offered;
  Alcotest.(check int) "seg0 admitted" 3 s0.Channel.admitted;
  Alcotest.(check int) "seg0 occupancy" 3 s0.Channel.occupancy;
  let s1 = Channel.seg_stats ch ~segment:1 in
  Alcotest.(check int) "seg1 admitted" 1 s1.Channel.admitted;
  (* reading the channel does not perturb the counters *)
  ignore (Channel.consume ch ~segment:0 ~part_scan_id:1);
  Alcotest.(check int)
    "consume does not count" 6
    (Channel.seg_stats ch ~segment:0).Channel.offered;
  Channel.reset ch;
  let r = Channel.seg_stats ch ~segment:0 in
  Alcotest.(check int) "reset offered" 0 r.Channel.offered;
  Alcotest.(check int) "reset occupancy" 0 r.Channel.occupancy

let () =
  Alcotest.run "profile"
    [ ("skew and estimates",
       [ Alcotest.test_case "skew math" `Quick test_skew_math;
         Alcotest.test_case "error factor" `Quick test_error_factor;
         Alcotest.test_case "Est.of_plan" `Quick test_est_of_plan ]);
      ("perfetto export",
       [ Alcotest.test_case "export shape" `Quick test_trace_export_shape;
         Alcotest.test_case "null sink and obs spans" `Quick
           test_trace_null_and_obs_spans;
         Alcotest.test_case "parallel run trace" `Quick
           test_trace_from_parallel_run ]);
      ("accounting",
       [ Alcotest.test_case "obs parallel hammer" `Quick
           test_obs_parallel_hammer;
         Alcotest.test_case "dpool accounting" `Quick test_dpool_accounting;
         Alcotest.test_case "channel occupancy" `Quick
           test_channel_occupancy ]) ]

(** Serial-vs-parallel optimizer equivalence.

    The parallel paths (memo root-candidate fan-out, join-order DP chunking)
    promise bit-identical plans for every domain count.  This suite pins
    that promise: the full 43-query workload and a qcheck sweep of generated
    big-join queries must produce the same plan tree and cost under domain
    counts 1/2/4, every plan verifier-clean, and the join-order DP must
    match brute force on small graphs. *)

module W = Mpp_workload
module Plan = Mpp_plan.Plan
module Valid = Mpp_plan.Plan_valid
module Opt = Orca.Optimizer
module Memo = Orca.Memo
module Joinorder = Orca.Joinorder
module Table = Mpp_catalog.Table

let env = lazy (W.Runner.setup_env ~scale:2 ~nsegments:4 ())

(* Runner.optimize_with with an explicit domain count (the runner itself
   always uses the config default). *)
let optimize_domains env ~domains (qu : W.Queries.query) =
  let open W.Runner in
  let lg = Mpp_sql.Sql.to_logical env.catalog qu.W.Queries.sql in
  Mpp_stats.Stats_source.clear_row_scales env.stats;
  List.iter
    (fun (name, factor) ->
      let table = Mpp_catalog.Catalog.find env.catalog name in
      Mpp_stats.Stats_source.set_row_scale env.stats
        ~table_oid:table.Table.oid ~factor)
    qu.W.Queries.misestimates;
  let config = { Opt.default_config with opt_domains = domains } in
  let opt = Opt.create ~config ~stats:env.stats ~catalog:env.catalog () in
  let plan = Opt.optimize opt lg in
  Mpp_stats.Stats_source.clear_row_scales env.stats;
  plan

(* Every workload query: identical plan trees under 1/2/4 domains, all
   verifier-clean (Optimizer.optimize raises Invalid_plan otherwise, but we
   re-check explicitly so a verifier regression fails loudly here too). *)
let test_workload_equivalence () =
  let env = Lazy.force env in
  List.iter
    (fun (qu : W.Queries.query) ->
      let serial = optimize_domains env ~domains:1 qu in
      Alcotest.(check bool)
        (qu.W.Queries.name ^ " serial plan valid")
        true (Valid.is_valid serial);
      List.iter
        (fun d ->
          let par = optimize_domains env ~domains:d qu in
          Alcotest.(check string)
            (Printf.sprintf "%s: plan identical at %d domains"
               qu.W.Queries.name d)
            (Plan.to_string serial) (Plan.to_string par))
        [ 2; 4 ])
    W.Queries.all

(* The join core under biggen's top-level aggregate: a Get/Select(Get)/Join
   tree the memo can optimize directly. *)
let join_core (lg : Orca.Logical.t) =
  match lg with Orca.Logical.Aggregate { child; _ } -> child | other -> other

(* Memo path proper: best_plan across domain counts on small generated
   graphs — same plan tree, same cost to the bit. *)
let test_memo_equivalence () =
  List.iter
    (fun spec ->
      let benv = W.Biggen.generate spec in
      let core = join_core benv.W.Biggen.logical in
      let best d =
        Memo.best_plan ~stats:benv.W.Biggen.stats
          ~catalog:benv.W.Biggen.catalog ~domains:d core
      in
      match best 1 with
      | None -> Alcotest.fail (benv.W.Biggen.name ^ ": memo found no plan")
      | Some (splan, scost) ->
          Alcotest.(check bool)
            (benv.W.Biggen.name ^ " serial memo plan valid")
            true (Valid.is_valid splan);
          List.iter
            (fun d ->
              match best d with
              | None ->
                  Alcotest.fail
                    (Printf.sprintf "%s: no plan at %d domains"
                       benv.W.Biggen.name d)
              | Some (pplan, pcost) ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s: memo plan identical at %d domains"
                       benv.W.Biggen.name d)
                    (Plan.to_string splan) (Plan.to_string pplan);
                  Alcotest.(check (float 0.0))
                    (Printf.sprintf "%s: memo cost identical at %d domains"
                       benv.W.Biggen.name d)
                    scost pcost)
            [ 2; 4 ])
    [
      { W.Biggen.shape = W.Biggen.Star; nrels = 5; seed = 11 };
      { W.Biggen.shape = W.Biggen.Chain; nrels = 6; seed = 3 };
      { W.Biggen.shape = W.Biggen.Clique; nrels = 4; seed = 8 };
    ]

let orca_plan benv ~domains =
  let config = { Opt.default_config with opt_domains = domains } in
  let opt =
    Opt.create ~config ~stats:benv.W.Biggen.stats
      ~catalog:benv.W.Biggen.catalog ()
  in
  Opt.optimize opt benv.W.Biggen.logical

(* qcheck sweep: 50 generated big-join queries, each optimized at 1 vs 4
   domains (identical trees, verifier-clean via optimize) and planned by
   the legacy planner (which raises on any verifier violation). *)
let biggen_arbitrary =
  let open QCheck in
  let shape =
    map
      (fun i ->
        match i mod 3 with
        | 0 -> W.Biggen.Star
        | 1 -> W.Biggen.Chain
        | _ -> W.Biggen.Clique)
      small_nat
  in
  map
    (fun (shape, nrels, seed) -> { W.Biggen.shape; nrels; seed })
    (triple shape (int_range 5 12) (int_range 0 9999))

let qcheck_biggen_equivalence =
  QCheck.Test.make ~count:50 ~name:"biggen: 1 vs 4 domains + legacy planner"
    biggen_arbitrary (fun spec ->
      let benv = W.Biggen.generate spec in
      let serial = orca_plan benv ~domains:1 in
      let par = orca_plan benv ~domains:4 in
      let legacy =
        Mpp_planner.Planner.plan
          (Mpp_planner.Planner.create ~catalog:benv.W.Biggen.catalog ())
          benv.W.Biggen.logical
      in
      Plan.to_string serial = Plan.to_string par
      && Valid.is_valid serial && Valid.is_valid legacy)

(* Same spec, fresh env each time: byte-identical plans (the generator and
   both optimizers are deterministic end to end). *)
let test_biggen_determinism () =
  let spec = { W.Biggen.shape = W.Biggen.Star; nrels = 10; seed = 42 } in
  let p1 = orca_plan (W.Biggen.generate spec) ~domains:4 in
  let p2 = orca_plan (W.Biggen.generate spec) ~domains:4 in
  Alcotest.(check string)
    "same spec, same plan" (Plan.to_string p1) (Plan.to_string p2)

(* Join-order DP vs brute force: enumerate every left-deep permutation of a
   5-leaf graph with the same C_out cost recurrence; the DP's order must
   achieve the minimum. *)
let cout_of g order =
  match order with
  | [] -> 0.0
  | first :: rest ->
      let mask = ref (1 lsl first) in
      let rows = ref g.Joinorder.leaf_rows.(first) in
      let cost = ref g.Joinorder.leaf_rows.(first) in
      List.iter
        (fun j ->
          let nm = !mask lor (1 lsl j) in
          let sel = ref 1.0 in
          Array.iter
            (fun (emask, es) ->
              if emask land (1 lsl j) <> 0 && emask land lnot nm = 0 then
                sel := !sel *. es)
            g.Joinorder.edges;
          let jr = g.Joinorder.leaf_rows.(j) in
          rows := Float.max 1.0 (!rows *. jr *. !sel);
          cost := !cost +. jr +. !rows;
          mask := nm)
        rest;
      !cost

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let test_joinorder_matches_brute_force () =
  let g =
    Joinorder.make
      ~leaf_rows:[| 1000.0; 10.0; 500.0; 20.0; 80.0 |]
      ~edges:
        [|
          (0b00011, 0.01);
          (0b00110, 0.05);
          (0b01100, 0.02);
          (0b11000, 0.1);
          (0b10001, 0.5);
        |]
  in
  let chosen = Joinorder.order g in
  Alcotest.(check int) "covers every leaf" 5 (List.length chosen);
  Alcotest.(check (list int))
    "each leaf exactly once" [ 0; 1; 2; 3; 4 ]
    (List.sort compare chosen);
  let best_brute =
    List.fold_left
      (fun acc p -> Float.min acc (cout_of g p))
      infinity
      (permutations [ 0; 1; 2; 3; 4 ])
  in
  Alcotest.(check (float 1e-9))
    "DP order achieves the brute-force minimum" best_brute (cout_of g chosen)

let test_joinorder_pool_independent () =
  let g =
    Joinorder.make
      ~leaf_rows:(Array.init 9 (fun i -> float_of_int ((i * 37 mod 11) + 2) *. 25.0))
      ~edges:(Array.init 8 (fun i -> (0b11 lsl i, 0.01 +. (0.03 *. float_of_int i))))
  in
  let serial = Joinorder.order g in
  List.iter
    (fun d ->
      Alcotest.(check (list int))
        (Printf.sprintf "order identical with %d domains" d)
        serial
        (Joinorder.order ~pool:(Mpp_exec.Dpool.get ~domains:d) g))
    [ 2; 4 ]

let () =
  Alcotest.run "opt_parallel"
    [
      ( "joinorder",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_joinorder_matches_brute_force;
          Alcotest.test_case "pool independent" `Quick
            test_joinorder_pool_independent;
        ] );
      ( "memo",
        [ Alcotest.test_case "domains 1/2/4 identical" `Quick
            test_memo_equivalence ] );
      ( "workload",
        [ Alcotest.test_case "43 queries, domains 1/2/4" `Slow
            test_workload_equivalence ] );
      ( "biggen",
        [
          Alcotest.test_case "deterministic generation" `Quick
            test_biggen_determinism;
          QCheck_alcotest.to_alcotest qcheck_biggen_equivalence;
        ] );
    ]

(** Serving-layer tests: plan-cache correctness (cache-hit executions are
    row-identical to fresh optimization for randomized bind parameters,
    under both optimizers, serial and parallel executors), invalidation on
    catalog change, and admission control (capacity-1 serialization,
    memory budgets, Dpool/Channel accounting). *)

open Mpp_expr
module W = Mpp_workload
module Serve = Mpp_serve.Serve
module Normalize = Mpp_serve.Normalize
module Plan_cache = Mpp_serve.Plan_cache
module Exec = Mpp_exec.Exec
module Dpool = Mpp_exec.Dpool
module Metrics = Mpp_exec.Metrics
module Catalog = Mpp_catalog.Catalog

let env = lazy (W.Runner.setup_env ~scale:1 ~nsegments:4 ())

let serve_config ?(optimizer = Serve.Orca) ?(workers = 2) ?(capacity = 4)
    ?(exec_domains = 1) ?mem_budget () =
  {
    Serve.default_config with
    optimizer;
    workers;
    capacity;
    exec_domains;
    mem_budget_bytes =
      (match mem_budget with
      | Some b -> b
      | None -> Serve.default_config.Serve.mem_budget_bytes);
  }

let with_server ?config env f =
  let config = match config with Some c -> c | None -> serve_config () in
  let srv =
    Serve.create ~config ~stats:env.W.Runner.stats
      ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage ()
  in
  Fun.protect ~finally:(fun () -> Serve.close srv) (fun () -> f srv)

(* Fresh optimize+run through the serving layer's own optimizer entry (no
   cache): the reference a cache-hit execution must be row-identical to. *)
let fresh_rows env kind sql =
  let lg = Mpp_sql.Sql.to_logical env.W.Runner.catalog sql in
  let srv_kind =
    match kind with Serve.Orca -> W.Runner.Orca | Serve.Planner -> W.Runner.Legacy_planner
  in
  ignore srv_kind;
  let plan =
    match kind with
    | Serve.Planner ->
        let pl =
          Mpp_planner.Planner.create ~catalog:env.W.Runner.catalog ()
        in
        Mpp_planner.Planner.plan pl lg
    | Serve.Orca ->
        let opt =
          Orca.Optimizer.create ~stats:env.W.Runner.stats
            ~catalog:env.W.Runner.catalog ()
        in
        Orca.Optimizer.optimize opt lg
  in
  fst
    (Exec.run ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage
       plan)

(* ------------------------------------------------------------------ *)
(* Plan-cache correctness                                              *)

let date_str base_day =
  (* days spread over the 3-year partitioned range starting 2013-01-01 *)
  let y = 2013 + (base_day / 360) in
  let m = 1 + (base_day mod 360 / 30) in
  let d = 1 + (base_day mod 30) in
  Printf.sprintf "%04d-%02d-%02d" y m d

(* Randomized bind parameters against the partition key: the prepared
   statement keeps $1/$2 as pruning-relevant parameters, so every
   execution after the first is a cache hit that must still re-run
   partition selection for its own bindings. *)
let test_cache_hit_random_params optimizer exec_domains () =
  let env = Lazy.force env in
  let config = serve_config ~optimizer ~exec_domains () in
  with_server ~config env (fun srv ->
      let prepared =
        Serve.prepare srv
          "SELECT count(*), sum(ss_price) FROM store_sales WHERE \
           ss_sold_date >= $1 AND ss_sold_date < $2"
      in
      let rand = W.Rng.create ~seed:42L () in
      for trial = 1 to 8 do
        let a = W.Rng.int rand 1000 and span = 1 + W.Rng.int rand 300 in
        let lo = date_str a and hi = date_str (min 1079 (a + span)) in
        let r =
          Serve.execute srv ~session:0 prepared
            [ (1, Value.date_of_string lo); (2, Value.date_of_string hi) ]
        in
        let literal_sql =
          Printf.sprintf
            "SELECT count(*), sum(ss_price) FROM store_sales WHERE \
             ss_sold_date >= '%s' AND ss_sold_date < '%s'"
            lo hi
        in
        Support.check_rows_equal
          (Printf.sprintf "trial %d (%s/%s)" trial lo hi)
          r.Serve.rows
          (fresh_rows env optimizer literal_sql);
        Alcotest.(check bool)
          (Printf.sprintf "trial %d cache hit" trial)
          (trial > 1) r.Serve.cache_hit
      done;
      let s = Plan_cache.stats (Serve.cache srv) in
      Alcotest.(check int) "one miss" 1 s.Plan_cache.misses;
      Alcotest.(check int) "seven hits" 7 s.Plan_cache.hits)

(* Literal lifting: the same statement with different partition-key
   literals must normalize to one cache entry. *)
let test_lifted_literals_share_entry () =
  let env = Lazy.force env in
  with_server env (fun srv ->
      let sqls =
        List.map
          (fun (lo, hi) ->
            Printf.sprintf
              "SELECT count(*) FROM store_sales WHERE ss_sold_date >= '%s' \
               AND ss_sold_date < '%s'"
              lo hi)
          [ ("2013-03-01", "2013-06-01");
            ("2014-01-01", "2014-02-01");
            ("2015-05-01", "2015-11-01") ]
      in
      List.iteri
        (fun i sql ->
          let prepared = Serve.prepare srv sql in
          let r = Serve.execute srv ~session:0 prepared [] in
          Support.check_rows_equal sql r.Serve.rows
            (fresh_rows env Serve.Orca sql);
          Alcotest.(check bool)
            (Printf.sprintf "statement %d hit" i)
            (i > 0) r.Serve.cache_hit)
        sqls;
      let s = Plan_cache.stats (Serve.cache srv) in
      Alcotest.(check int) "single entry" 1 s.Plan_cache.entries)

(* Shape-relevant parameters: a predicate on a non-partitioning column is
   substituted back as a literal, so each distinct value is its own cache
   entry — and a repeated value is a hit. *)
let test_shape_relevant_values_reoptimize () =
  let env = Lazy.force env in
  with_server env (fun srv ->
      let sql n =
        Printf.sprintf
          "SELECT count(*) FROM store_sales WHERE ss_qty < %d" n
      in
      let run n =
        let prepared = Serve.prepare srv (sql n) in
        let r = Serve.execute srv ~session:0 prepared [] in
        Support.check_rows_equal (sql n) r.Serve.rows
          (fresh_rows env Serve.Orca (sql n));
        r.Serve.cache_hit
      in
      Alcotest.(check bool) "qty<3 cold" false (run 3);
      Alcotest.(check bool) "qty<7 also cold (shape value)" false (run 7);
      Alcotest.(check bool) "qty<3 again is a hit" true (run 3);
      let prepared = Serve.prepare srv (sql 3) in
      let classes = prepared.Serve.p_norm.Normalize.classes in
      Alcotest.(check bool) "has a shape-relevant slot" true
        (Array.exists (fun c -> c = Normalize.Shape) classes))

(* The full 43-query workload: cold then warm through the server, both
   optimizers; warm pass must be all cache hits, verifier-clean at insert
   (insert would have raised), and row-identical to the cold pass and to a
   fresh optimize+run. *)
let test_workload_roundtrip optimizer () =
  let env = Lazy.force env in
  let config = serve_config ~optimizer () in
  with_server ~config env (fun srv ->
      List.iter
        (fun (qu : W.Queries.query) ->
          let prepared = Serve.prepare srv qu.W.Queries.sql in
          let cold = Serve.execute srv ~session:0 prepared [] in
          let warm = Serve.execute srv ~session:0 prepared [] in
          let name = qu.W.Queries.name in
          Alcotest.(check bool) (name ^ ": warm is a hit") true
            warm.Serve.cache_hit;
          Support.check_rows_equal (name ^ ": warm = cold")
            warm.Serve.rows cold.Serve.rows;
          Support.check_rows_equal
            (name ^ ": serve = fresh")
            cold.Serve.rows
            (fresh_rows env optimizer qu.W.Queries.sql);
          (* Channel/metrics accounting: same plan, same execution —
             scanned partitions and moved rows must agree exactly. *)
          Alcotest.(check int)
            (name ^ ": scanned parts agree")
            (Metrics.total_parts_scanned cold.Serve.metrics)
            (Metrics.total_parts_scanned warm.Serve.metrics))
        W.Queries.all)

(* Catalog invalidation: a DDL generation bump drops cached plans. *)
let test_invalidation_on_catalog_change () =
  let env = W.Runner.setup_env ~scale:1 ~nsegments:4 () in
  with_server env (fun srv ->
      let sql = "SELECT count(*) FROM store_sales WHERE ss_qty < 5" in
      let prepared = Serve.prepare srv sql in
      let r1 = Serve.execute srv ~session:0 prepared [] in
      let r2 = Serve.execute srv ~session:0 prepared [] in
      Alcotest.(check bool) "warm hit before DDL" true r2.Serve.cache_hit;
      ignore
        (Catalog.add_table env.W.Runner.catalog ~name:"serve_inval_probe"
           ~columns:[ ("x", Value.Tint) ]
           ~distribution:(Mpp_catalog.Distribution.Hashed [ 0 ])
           ());
      let r3 = Serve.execute srv ~session:0 prepared [] in
      Alcotest.(check bool) "post-DDL execution is a miss" false
        r3.Serve.cache_hit;
      Support.check_rows_equal "rows stable across invalidation"
        r1.Serve.rows r3.Serve.rows;
      let s = Plan_cache.stats (Serve.cache srv) in
      Alcotest.(check bool) "invalidation counted" true
        (s.Plan_cache.invalidations >= 1))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let admission_queries =
  [
    "SELECT count(*) FROM store_sales WHERE ss_sold_date >= '2013-02-01' \
     AND ss_sold_date < '2013-05-01'";
    "SELECT ss_item, count(*) FROM store_sales ss, store_returns sr WHERE \
     ss_item = sr_item AND ss_item < 3 GROUP BY ss_item";
    "SELECT count(*) FROM web_sales WHERE ws_qty < 10";
    "SELECT s_state, count(*) FROM store_sales ss, store s WHERE ss_store \
     = s_id GROUP BY s_state";
  ]

(* Capacity 1, K queued sessions: every query's rows must equal a serial
   execution's, the controller must never have two queries in flight, and
   the Dpool accounting must match a serial baseline (no lost or
   duplicated parallel jobs). *)
let test_admission_capacity_one () =
  let env = Lazy.force env in
  let nsessions = 4 in
  let config = serve_config ~workers:2 ~capacity:1 ~exec_domains:1 () in
  with_server ~config env (fun srv ->
      let sessions =
        Array.init nsessions (fun _ ->
            List.map
              (fun sql -> (Serve.prepare srv sql, []))
              admission_queries)
      in
      let results = Serve.run_stream srv sessions in
      (* serial baseline through a private pool, counting Dpool jobs *)
      let baseline_pool = Dpool.create 1 in
      let baseline =
        List.map
          (fun sql ->
            fst
              (Exec.run ~pool:baseline_pool ~catalog:env.W.Runner.catalog
                 ~storage:env.W.Runner.storage
                 (let opt =
                    Orca.Optimizer.create ~stats:env.W.Runner.stats
                      ~catalog:env.W.Runner.catalog ()
                  in
                  Orca.Optimizer.optimize opt
                    (Mpp_sql.Sql.to_logical env.W.Runner.catalog sql))))
          admission_queries
      in
      let serial_jobs = Dpool.jobs_submitted baseline_pool in
      Dpool.shutdown baseline_pool;
      Array.iteri
        (fun s rs ->
          Alcotest.(check int)
            (Printf.sprintf "session %d completed all" s)
            (List.length admission_queries)
            (List.length rs);
          List.iteri
            (fun qi r ->
              Support.check_rows_equal
                (Printf.sprintf "session %d query %d = serial" s qi)
                r.Serve.rows
                (List.nth baseline qi))
            rs)
        results;
      let a = Serve.admission_stats srv in
      Alcotest.(check int) "peak in-flight is 1" 1 a.Serve.peak_in_flight;
      Alcotest.(check int) "all submitted completed"
        (nsessions * List.length admission_queries)
        a.Serve.completed;
      Alcotest.(check int) "no failures" 0 a.Serve.failed;
      (* Dpool accounting: the workers' private pools together ran the
         same parallel sections K sessions × the serial baseline. *)
      let served_jobs = Serve.worker_jobs_submitted srv in
      Alcotest.(check int) "dpool jobs = K × serial baseline"
        (nsessions * serial_jobs) served_jobs)

(* A memory budget smaller than any single query's estimate: queries are
   admitted one at a time (oversize-when-idle), so the budget is never
   exceeded by co-admission. *)
let test_admission_memory_budget () =
  let env = Lazy.force env in
  let config =
    serve_config ~workers:2 ~capacity:4 ~exec_domains:1 ~mem_budget:1.0 ()
  in
  with_server ~config env (fun srv ->
      let sessions =
        Array.init 3 (fun _ ->
            List.map
              (fun sql -> (Serve.prepare srv sql, []))
              admission_queries)
      in
      let results = Serve.run_stream srv sessions in
      Array.iter
        (fun rs ->
          Alcotest.(check int) "session completed all"
            (List.length admission_queries)
            (List.length rs))
        results;
      let a = Serve.admission_stats srv in
      Alcotest.(check int)
        "budget under any estimate => serialized" 1 a.Serve.peak_in_flight;
      Alcotest.(check int) "every admission was oversize-when-idle"
        a.Serve.completed a.Serve.oversize_admissions);
  (* and with a generous budget, co-admission stays within it *)
  let config2 = serve_config ~workers:2 ~capacity:2 ~exec_domains:1 () in
  with_server ~config:config2 env (fun srv ->
      let sessions =
        Array.init 3 (fun _ ->
            List.map
              (fun sql -> (Serve.prepare srv sql, []))
              admission_queries)
      in
      ignore (Serve.run_stream srv sessions);
      let a = Serve.admission_stats srv in
      Alcotest.(check bool) "peak within capacity" true
        (a.Serve.peak_in_flight <= 2);
      Alcotest.(check bool) "peak memory within budget" true
        (a.Serve.peak_mem_bytes
        <= Serve.default_config.Serve.mem_budget_bytes +. 1.0);
      Alcotest.(check int) "no oversize admissions" 0
        a.Serve.oversize_admissions)

let () =
  Alcotest.run "serve"
    [
      ( "plan cache",
        [
          Alcotest.test_case "random binds, orca, serial" `Slow
            (test_cache_hit_random_params Serve.Orca 1);
          Alcotest.test_case "random binds, orca, parallel" `Slow
            (test_cache_hit_random_params Serve.Orca 2);
          Alcotest.test_case "random binds, planner, serial" `Slow
            (test_cache_hit_random_params Serve.Planner 1);
          Alcotest.test_case "random binds, planner, parallel" `Slow
            (test_cache_hit_random_params Serve.Planner 2);
          Alcotest.test_case "lifted literals share an entry" `Quick
            test_lifted_literals_share_entry;
          Alcotest.test_case "shape-relevant values re-optimize" `Quick
            test_shape_relevant_values_reoptimize;
          Alcotest.test_case "workload round-trip, orca" `Slow
            (test_workload_roundtrip Serve.Orca);
          Alcotest.test_case "workload round-trip, planner" `Slow
            (test_workload_roundtrip Serve.Planner);
          Alcotest.test_case "invalidation on catalog change" `Quick
            test_invalidation_on_catalog_change;
        ] );
      ( "admission control",
        [
          Alcotest.test_case "capacity 1 serializes" `Slow
            test_admission_capacity_one;
          Alcotest.test_case "memory budgets" `Slow
            test_admission_memory_budget;
        ] );
    ]

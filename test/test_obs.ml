(** Observability-layer tests: span nesting under an injectable clock,
    saturating counter arithmetic, the JSON round-trip guarantee, and the
    disabled sink's no-op contract. *)

module Obs = Mpp_obs.Obs
module Json = Mpp_obs.Json

(* ---- spans ---- *)

let test_span_nesting () =
  let now = ref 0.0 in
  let t = Obs.create ~clock:(fun () -> !now) () in
  Obs.span t "outer" (fun () ->
      now := !now +. 1.0;
      Obs.span t "inner" (fun () -> now := !now +. 0.5);
      Obs.annotate t "k" (Json.Int 7));
  match Obs.root_spans t with
  | [ s ] -> (
      Alcotest.(check string) "root name" "outer" s.Obs.span_name;
      Alcotest.(check (float 1e-9)) "outer elapsed" 1.5 s.Obs.span_elapsed;
      Alcotest.(check bool) "attr lands on the open span" true
        (List.mem_assoc "k" s.Obs.span_attrs);
      match s.Obs.span_children with
      | [ c ] ->
          Alcotest.(check string) "child name" "inner" c.Obs.span_name;
          Alcotest.(check (float 1e-9)) "inner elapsed" 0.5 c.Obs.span_elapsed
      | l -> Alcotest.failf "expected one child, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l)

let test_span_exception_closes () =
  let t = Obs.create ~clock:(fun () -> 0.0) () in
  (try Obs.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "span closed despite the exception" true
    (Obs.find_span t "boom" <> None);
  (* a later span must not end up nested under the failed one *)
  Obs.span t "after" (fun () -> ());
  Alcotest.(check int) "both are roots" 2 (List.length (Obs.root_spans t))

(* ---- counters ---- *)

let test_counter_saturation () =
  let t = Obs.create () in
  Obs.add t "c" max_int;
  Obs.incr t "c";
  Alcotest.(check int) "saturates at max_int" max_int (Obs.counter t "c");
  Obs.add t "d" min_int;
  Obs.add t "d" (-1);
  Alcotest.(check int) "saturates at min_int" min_int (Obs.counter t "d");
  Obs.add t "e" 2;
  Obs.add t "e" 3;
  Alcotest.(check int) "normal addition" 5 (Obs.counter t "e");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("c", max_int); ("d", min_int); ("e", 5) ]
    (Obs.counters t)

(* ---- the disabled sink ---- *)

let test_disabled_sink_noop () =
  let t = Obs.null in
  Alcotest.(check bool) "null sink is disabled" false (Obs.enabled t);
  Obs.incr t "x";
  Obs.add t "x" 5;
  Obs.annotate t "a" Json.Null;
  let r = Obs.span t "s" (fun () -> 42) in
  Alcotest.(check int) "span passes the result through" 42 r;
  Alcotest.(check int) "no counter recorded" 0 (Obs.counter t "x");
  Alcotest.(check (list (pair string int))) "counters empty" [] (Obs.counters t);
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.root_spans t))

let test_install_current () =
  let t = Obs.create () in
  Obs.install t;
  Obs.incr (Obs.current ()) "hits";
  Obs.uninstall ();
  Obs.incr (Obs.current ()) "hits";
  (* the second increment went to the (disabled) null sink *)
  Alcotest.(check int) "only the installed sink records" 1 (Obs.counter t "hits")

(* ---- JSON ---- *)

let sample =
  Json.Obj
    [ ("null", Json.Null);
      ("bool", Json.Bool true);
      ("int", Json.Int (-42));
      ("float", Json.Float 1.5);
      ("integral_float", Json.Float 3.0);
      ("string", Json.String "a \"quoted\"\nline\twith \\ and \x01 ctrl");
      ("utf8", Json.String "caf\xc3\xa9 \xe2\x9c\x93");
      ("list", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ("nested", Json.Obj [ ("k", Json.List [ Json.Bool false; Json.Null ]) ])
    ]

let test_json_roundtrip () =
  Alcotest.(check bool) "compact round-trip" true
    (Json.equal sample (Json.parse (Json.to_string sample)));
  Alcotest.(check bool) "pretty round-trip" true
    (Json.equal sample (Json.parse (Json.to_string_pretty sample)))

let test_json_reject_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (Json.parse_opt s = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let test_trace_export_parses () =
  let now = ref 0.0 in
  let t = Obs.create ~clock:(fun () -> !now) () in
  Obs.incr t "a.b";
  Obs.span t "s" (fun () -> now := !now +. 0.25);
  let j = Obs.to_json t in
  let round = Json.parse (Json.to_string_pretty j) in
  Alcotest.(check bool) "export round-trips" true (Json.equal j round);
  (match Json.member "counters" round with
  | Some (Json.Obj [ ("a.b", Json.Int 1) ]) -> ()
  | _ -> Alcotest.fail "counters section malformed");
  match Json.member "spans" round with
  | Some (Json.List [ span ]) ->
      Alcotest.(check (option int)) "span elapsed in ms" None
        (Option.bind (Json.member "elapsed_ms" span) Json.to_int_opt);
      Alcotest.(check bool) "span named" true
        (Json.member "name" span = Some (Json.String "s"))
  | _ -> Alcotest.fail "spans section malformed"

let () =
  Alcotest.run "obs"
    [ ("spans",
       [ Alcotest.test_case "nesting and elapsed" `Quick test_span_nesting;
         Alcotest.test_case "exception closes span" `Quick
           test_span_exception_closes ]);
      ("counters",
       [ Alcotest.test_case "saturating addition" `Quick
           test_counter_saturation ]);
      ("disabled sink",
       [ Alcotest.test_case "all operations no-op" `Quick
           test_disabled_sink_noop;
         Alcotest.test_case "install/current/uninstall" `Quick
           test_install_current ]);
      ("json",
       [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
         Alcotest.test_case "rejects malformed input" `Quick
           test_json_reject_garbage;
         Alcotest.test_case "trace export parses" `Quick
           test_trace_export_parses ]) ]

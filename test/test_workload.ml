(** Workload-level tests: the Table-3 classification reproduces its expected
    categories, and — most importantly — Orca, the legacy Planner and the
    selection-disabled configuration all compute identical answers on every
    query of the evaluation workload. *)

module W = Mpp_workload

let env = lazy (W.Runner.setup_env ~scale:1 ~nsegments:4 ())

let test_classification_golden () =
  let outcomes = W.Classify.run_workload (Lazy.force env) in
  Alcotest.(check int) "43 queries" 43 (List.length outcomes);
  List.iter
    (fun (o : W.Classify.outcome) ->
      Alcotest.(check string)
        (o.query.W.Queries.name ^ " category")
        (W.Queries.category_to_string o.query.W.Queries.expected)
        (W.Queries.category_to_string o.category))
    outcomes

let test_breakdown_shape () =
  let outcomes = W.Classify.run_workload (Lazy.force env) in
  let pct cat =
    match List.find_opt (fun (c, _, _) -> c = cat) (W.Classify.breakdown outcomes)
    with
    | Some (_, _, p) -> p
    | None -> 0.0
  in
  (* the paper's Table 3: 11 / 3 / 80 / 3 / 3 *)
  Alcotest.(check bool) "equal dominates (~80%)" true
    (pct W.Queries.Equal >= 70.0);
  Alcotest.(check bool) "orca-only ~10%" true
    (pct W.Queries.Orca_only >= 8.0 && pct W.Queries.Orca_only <= 18.0);
  Alcotest.(check bool) "sub-optimal cases exist but are rare" true
    (pct W.Queries.Orca_fewer +. pct W.Queries.Planner_only <= 10.0)

let test_orca_never_worse_per_table () =
  (* Figure 16: aggregated per fact table, Orca scans at most as many
     partitions as the Planner *)
  List.iter
    (fun (name, planner, orca, total) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: orca (%d) <= planner (%d)" name orca planner)
        true (orca <= planner);
      Alcotest.(check bool) (name ^ ": bounded by totals") true
        (planner <= total && orca <= total))
    (W.Classify.parts_by_table (Lazy.force env))

let test_result_parity_three_ways () =
  let env = Lazy.force env in
  List.iter
    (fun qu ->
      let orca = W.Runner.run env W.Runner.Orca qu in
      let off = W.Runner.run env W.Runner.Orca_no_selection qu in
      let planner = W.Runner.run env W.Runner.Legacy_planner qu in
      let name = qu.W.Queries.name in
      Alcotest.(check bool) (name ^ ": orca = no-selection") true
        (Support.rows_equal orca.W.Runner.rows off.W.Runner.rows);
      Alcotest.(check bool) (name ^ ": orca = planner") true
        (Support.rows_equal orca.W.Runner.rows planner.W.Runner.rows))
    W.Queries.all

let test_selection_only_prunes () =
  (* selection enabled never scans more than disabled *)
  let env = Lazy.force env in
  List.iter
    (fun qu ->
      let on_ = W.Runner.run env W.Runner.Orca qu in
      let off = W.Runner.run env W.Runner.Orca_no_selection qu in
      Alcotest.(check bool)
        (qu.W.Queries.name ^ ": selection prunes or equals")
        true
        (W.Runner.total_parts_scanned on_ <= W.Runner.total_parts_scanned off))
    W.Queries.all

let test_plan_sizes_bounded () =
  (* compactness: orca plans stay small even for the fattest queries *)
  let env = Lazy.force env in
  List.iter
    (fun qu ->
      let orca = W.Runner.run env W.Runner.Orca qu in
      Alcotest.(check bool)
        (qu.W.Queries.name ^ ": orca plan below 64 KB")
        true
        (orca.W.Runner.plan_bytes < 64 * 1024))
    W.Queries.all

let test_tpch_scenarios () =
  List.iter
    (fun scenario ->
      let catalog = Mpp_catalog.Catalog.create () in
      let storage = Mpp_storage.Storage.create ~nsegments:2 in
      let table = W.Tpch.setup ~catalog ~storage ~scenario ~rows:2000 in
      Alcotest.(check int)
        (W.Tpch.scenario_name scenario ^ " partition count")
        (W.Tpch.scenario_parts scenario)
        (Mpp_catalog.Table.nparts table);
      Alcotest.(check int)
        (W.Tpch.scenario_name scenario ^ " loads every row")
        2000
        (Mpp_storage.Storage.count_table storage table))
    [ W.Tpch.Unpartitioned; W.Tpch.Parts_42; W.Tpch.Parts_84;
      W.Tpch.Parts_169; W.Tpch.Parts_361 ]

let test_tpcds_schema_shape () =
  let env = Lazy.force env in
  let s = env.W.Runner.schema in
  Alcotest.(check int) "seven fact tables" 7
    (List.length (W.Tpcds.fact_tables s));
  Alcotest.(check int) "monthly facts have 36 parts" 36
    (Mpp_catalog.Table.nparts s.W.Tpcds.store_sales);
  Alcotest.(check int) "two-level catalog_returns" 108
    (Mpp_catalog.Table.nparts s.W.Tpcds.catalog_returns);
  Alcotest.(check int) "bi-weekly inventory" 79
    (Mpp_catalog.Table.nparts s.W.Tpcds.inventory);
  Alcotest.(check bool) "date_dim covers the range" true
    (Mpp_storage.Storage.count_segment env.W.Runner.storage ~segment:0
       ~oid:s.W.Tpcds.date_dim.Mpp_catalog.Table.oid
    = W.Tpcds.day_count)

let test_rng_deterministic () =
  let a = W.Rng.create ~seed:7L () and b = W.Rng.create ~seed:7L () in
  let xs = List.init 100 (fun _ -> W.Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> W.Rng.int b 1000) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  Alcotest.(check bool) "values in range" true
    (List.for_all (fun x -> x >= 0 && x < 1000) xs)

let () =
  Alcotest.run "workload"
    [ ("classification (Table 3)",
       [ Alcotest.test_case "golden categories" `Slow test_classification_golden;
         Alcotest.test_case "breakdown shape" `Slow test_breakdown_shape;
         Alcotest.test_case "per-table totals (Figure 16)" `Slow
           test_orca_never_worse_per_table ]);
      ("correctness",
       [ Alcotest.test_case "three-way result parity" `Slow
           test_result_parity_three_ways;
         Alcotest.test_case "selection only prunes" `Slow
           test_selection_only_prunes;
         Alcotest.test_case "orca plans compact" `Slow test_plan_sizes_bounded ]);
      ("generators",
       [ Alcotest.test_case "tpch scenarios" `Quick test_tpch_scenarios;
         Alcotest.test_case "tpcds schema" `Quick test_tpcds_schema_shape;
         Alcotest.test_case "deterministic rng" `Quick test_rng_deterministic ]) ]

(** Mutation-kill harness for the plan verifier.

    Two directions:

    - {b soundness}: every plan either optimizer produces for the full
      evaluation workload — and for hundreds of fuzz-generated queries over
      the same schema — verifies with zero diagnostics;
    - {b sensitivity}: ~30 systematic corruptions of real plans (dropped
      selectors, reordered Sequences, skewed column offsets, stripped
      Motions, miscounted partitions, broken runtime-filter pairings, …)
      are each rejected with the expected diagnostic code.

    Together these pin the verifier to the executor's actual contract: it
    accepts exactly what the optimizers emit and kills every mutant. *)

module W = Mpp_workload
module Plan = Mpp_plan.Plan
module Verify = Mpp_verify.Verify
module Diag = Mpp_verify.Diag
module Cat = Mpp_catalog.Catalog
open Mpp_expr

let env = lazy (W.Runner.setup_env ~scale:1 ~nsegments:4 ())
let catalog () = (Lazy.force env).W.Runner.catalog

let plan_for kind name =
  W.Runner.optimize_with (Lazy.force env) kind (W.Queries.find name)

let adhoc kind sql =
  W.Runner.optimize_with (Lazy.force env) kind
    (W.Queries.q "adhoc" W.Queries.Equal sql)

let oid_of name = (Cat.find (catalog ()) name).Mpp_catalog.Table.oid

(* ------------------------------------------------------------------ *)
(* Rewriting combinators                                               *)
(* ------------------------------------------------------------------ *)

(* Apply [f] to the first (pre-order) node it matches; fail the test if
   the mutation found nothing to corrupt — a silently-unapplied mutation
   would make the kill vacuous. *)
let once f plan =
  let hit = ref false in
  let rec go p =
    if !hit then p
    else
      match f p with
      | Some q ->
          hit := true;
          q
      | None -> Plan.with_children p (List.map go (Plan.children p))
  in
  let p' = go plan in
  if not !hit then Alcotest.fail "mutation did not apply to the base plan";
  p'

(* Bottom-up expression map. *)
let rec emap f (e : Expr.t) : Expr.t =
  let e' =
    match e with
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, emap f a, emap f b)
    | Expr.And es -> Expr.And (List.map (emap f) es)
    | Expr.Or es -> Expr.Or (List.map (emap f) es)
    | Expr.Not x -> Expr.Not (emap f x)
    | Expr.Arith (op, a, b) -> Expr.Arith (op, emap f a, emap f b)
    | Expr.In_list (x, vs) -> Expr.In_list (emap f x, vs)
    | Expr.Is_null x -> Expr.Is_null (emap f x)
    | Expr.Func (n, args) -> Expr.Func (n, List.map (emap f) args)
    | Expr.Const _ | Expr.Col _ | Expr.Param _ -> e
  in
  f e'

let is_selector = function Plan.Partition_selector _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Base plans (real optimizer output)                                  *)
(* ------------------------------------------------------------------ *)

(* Orca, static selection: Agg → Gather → Agg → Sequence[Selector; DynScan] *)
let static_orca () = plan_for W.Runner.Orca "ss_static_month"

(* Planner, static exclusion: Agg → Gather → Append[Scan × 3] *)
let static_planner () = plan_for W.Runner.Legacy_planner "ss_static_quarter"

(* Orca, join-driven DPE: HashJoin(Selector(dim scan), DynScan) *)
let dpe_orca () = plan_for W.Runner.Orca "ss_datedim_august"

(* Planner DPE: Selector feeding guarded per-leaf scans under an Append *)
let dpe_planner () = plan_for W.Runner.Legacy_planner "ss_datedim_august"

(* Orca, no aggregate: the plan root is the Gather itself *)
let select_orca () =
  adhoc W.Runner.Orca
    "SELECT ss_price FROM store_sales WHERE ss_sold_date >= '2013-06-01'"

(* Orca, runtime-join-filter annotation: HashJoin with a
   RuntimeFilterBuild on the (selective dimension) build side and a
   RuntimeFilter pushed to the fact scan on the probe side *)
let rf_orca () = plan_for W.Runner.Orca "ss_customer_rf_scan"

(* ------------------------------------------------------------------ *)
(* The mutations                                                       *)
(* ------------------------------------------------------------------ *)

let mutations :
    (string * string * (unit -> Plan.t)) list =
  [
    ( "drop selector",
      "structure/unmatched-scan",
      fun () ->
        once
          (function
            | Plan.Sequence cs when List.exists is_selector cs ->
                Some
                  (Plan.Sequence
                     (List.filter (fun c -> not (is_selector c)) cs))
            | _ -> None)
          (static_orca ()) );
    ( "dynamic scan demoted to table scan",
      "structure/unmatched-selector",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan { rel; root_oid; filter; _ } ->
                Some
                  (Plan.Table_scan
                     { rel; table_oid = root_oid; filter; guard = None })
            | _ -> None)
          (static_orca ()) );
    ( "sequence children reversed",
      "structure/consumer-before-producer",
      fun () ->
        once
          (function
            | Plan.Sequence cs when List.exists is_selector cs ->
                Some (Plan.Sequence (List.rev cs))
            | _ -> None)
          (static_orca ()) );
    ( "join children swapped",
      "structure/consumer-before-producer",
      fun () ->
        once
          (function
            | Plan.Hash_join ({ left; right; _ } as j) ->
                Some (Plan.Hash_join { j with left = right; right = left })
            | _ -> None)
          (dpe_orca ()) );
    ( "motion inserted inside a selector/scan pair",
      "structure/motion-between-pair",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan _ as ds ->
                Some (Plan.motion Plan.Broadcast ds)
            | _ -> None)
          (static_orca ()) );
    ( "duplicated selector",
      "structure/duplicate-selector",
      fun () ->
        once
          (function
            | Plan.Sequence cs -> (
                match List.find_opt is_selector cs with
                | Some s -> Some (Plan.Sequence (s :: cs))
                | None -> None)
            | _ -> None)
          (static_orca ()) );
    ( "selector retargeted at another table",
      "structure/root-oid-mismatch",
      fun () ->
        once
          (function
            | Plan.Partition_selector s ->
                Some
                  (Plan.Partition_selector
                     { s with root_oid = oid_of "web_sales" })
            | _ -> None)
          (static_orca ()) );
    ( "per-level predicate list emptied",
      "structure/selector-arity",
      fun () ->
        once
          (function
            | Plan.Partition_selector ({ predicates = _ :: _; _ } as s) ->
                Some (Plan.Partition_selector { s with predicates = [] })
            | _ -> None)
          (static_orca ()) );
    ( "column offset skewed out of range",
      "schema/unresolved-column",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan ({ filter = Some f; _ } as s) ->
                Some
                  (Plan.Dynamic_scan
                     { s with
                       filter =
                         Some
                           (emap
                              (function
                                | Expr.Col c ->
                                    Expr.Col
                                      { c with Colref.index = c.Colref.index + 57 }
                                | e -> e)
                              f) })
            | _ -> None)
          (static_orca ()) );
    ( "comparison constant of the wrong class",
      "schema/cmp-incompatible",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan ({ filter = Some f; _ } as s) ->
                Some
                  (Plan.Dynamic_scan
                     { s with
                       filter =
                         Some
                           (emap
                              (function
                                | Expr.Const (Value.Date _) ->
                                    Expr.Const (Value.String "oops")
                                | e -> e)
                              f) })
            | _ -> None)
          (static_orca ()) );
    ( "scan relation index retargeted",
      "schema/unresolved-column",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan ({ filter = Some _; _ } as s) ->
                Some (Plan.Dynamic_scan { s with rel = s.rel + 40 })
            | _ -> None)
          (static_orca ()) );
    ( "append child with a different layout",
      "schema/append-mismatch",
      fun () ->
        once
          (function
            | Plan.Append (c0 :: rest) when rest <> [] ->
                Some
                  (Plan.Append
                     (Plan.Project
                        { exprs = [ ("x", Expr.int 0) ]; child = c0 }
                     :: rest))
            | _ -> None)
          (static_planner ()) );
    ( "statically-surviving leaf dropped from an Append",
      "accounting/append-undercoverage",
      fun () ->
        once
          (function
            | Plan.Append (c0 :: rest)
              when rest <> []
                   && List.for_all
                        (function Plan.Table_scan _ -> true | _ -> false)
                        (c0 :: rest) ->
                Some (Plan.Append rest)
            | _ -> None)
          (static_planner ()) );
    ( "guarded leaf of a foreign table",
      "accounting/guard-foreign-leaf",
      fun () ->
        once
          (function
            | Plan.Table_scan ({ guard = Some _; _ } as s) ->
                Some
                  (Plan.Table_scan { s with table_oid = oid_of "date_dim" })
            | _ -> None)
          (dpe_planner ()) );
    ( "declared partition count off by one",
      "accounting/nparts-mismatch",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan ({ ds_nparts; _ } as s) when ds_nparts >= 0 ->
                Some (Plan.Dynamic_scan { s with ds_nparts = ds_nparts + 1 })
            | _ -> None)
          (static_orca ()) );
    ( "dynamic scan over an unpartitioned table",
      "accounting/not-partitioned",
      fun () ->
        once
          (function
            | Plan.Dynamic_scan ({ ds_nparts; _ } as s) when ds_nparts >= 0 ->
                Some
                  (Plan.Dynamic_scan { s with root_oid = oid_of "date_dim" })
            | _ -> None)
          (static_orca ()) );
    ( "root gather stripped",
      "distribution/root-not-gathered",
      fun () ->
        once
          (function
            | Plan.Motion { kind = Plan.Gather; child } -> Some child
            | _ -> None)
          (select_orca ()) );
    ( "gather-one over hash-distributed rows",
      "distribution/gather-one-nonreplicated",
      fun () ->
        once
          (function
            | Plan.Motion { kind = Plan.Gather; child } ->
                Some (Plan.motion Plan.Gather_one child)
            | _ -> None)
          (select_orca ()) );
    ( "motion stacked on motion",
      "distribution/motion-over-motion",
      fun () -> Plan.motion Plan.Gather (select_orca ()) );
    ( "co-location broken by a stray redistribute",
      "distribution/join-not-colocated",
      fun () ->
        once
          (function
            | Plan.Table_scan ({ rel = 0; _ } as s) ->
                Some
                  (Plan.motion
                     (Plan.Redistribute
                        [ Colref.make ~rel:0 ~index:1 ~name:"d_date_id"
                            ~dtype:Value.Tint ])
                     (Plan.Table_scan s))
            | _ -> None)
          (dpe_orca ()) );
    ( "gather between partial and final aggregate removed",
      "distribution/agg-distributed",
      fun () ->
        once
          (function
            | Plan.Agg
                ({ child = Plan.Motion { kind = Plan.Gather; child = c }; _ }
                 as a) ->
                Some (Plan.Agg { a with child = c })
            | _ -> None)
          (static_orca ()) );
    ( "insert row with the wrong arity",
      "schema/insert-arity",
      fun () ->
        Plan.Insert
          { table_oid = oid_of "store_sales"; rows = [ [ Expr.int 1 ] ] } );
    ( "delete whose target is not in the child output",
      "schema/dml-target-missing",
      fun () ->
        let ss = oid_of "store_sales" in
        Plan.Delete
          { rel = 5; table_oid = ss; child = Plan.table_scan ~rel:0 ss } );
    (* ---- runtime-join-filter corruptions (the fifth pass) ---- *)
    ( "filter builder dropped",
      "filters/unmatched-consumer",
      fun () ->
        once
          (function
            | Plan.Runtime_filter_build { child; _ } -> Some child
            | _ -> None)
          (rf_orca ()) );
    ( "filter builder duplicated",
      "filters/duplicate-builder",
      fun () ->
        once
          (function
            | Plan.Runtime_filter_build { rf_id; keys; rows_est; _ } as b ->
                Some (Plan.runtime_filter_build ~rf_id ~keys ~rows_est b)
            | _ -> None)
          (rf_orca ()) );
    ( "consumer key arity diverges from its builder",
      "filters/key-arity",
      fun () ->
        once
          (function
            | Plan.Runtime_filter ({ keys = k :: _; _ } as f) ->
                Some (Plan.Runtime_filter { f with keys = [ k; k ] })
            | _ -> None)
          (rf_orca ()) );
    ( "filter endpoints on the wrong join sides",
      "filters/consumer-on-build-side",
      fun () ->
        once
          (function
            | Plan.Hash_join ({ left = Plan.Runtime_filter_build _; _ } as j)
              ->
                Some
                  (Plan.Hash_join { j with left = j.right; right = j.left })
            | _ -> None)
          (rf_orca ()) );
    ( "at_motion claimed without a send above",
      "filters/at-motion-misplaced",
      fun () ->
        once
          (function
            | Plan.Runtime_filter ({ at_motion = false; _ } as f) ->
                Some (Plan.Runtime_filter { f with at_motion = true })
            | _ -> None)
          (rf_orca ()) );
    ( "gather inserted between consumer and join",
      "filters/crosses-gather",
      fun () ->
        once
          (function
            | Plan.Runtime_filter _ as f -> Some (Plan.motion Plan.Gather f)
            | _ -> None)
          (rf_orca ()) );
    ( "builder with no key columns",
      "filters/no-keys",
      fun () ->
        once
          (function
            | Plan.Runtime_filter_build ({ keys = _ :: _; _ } as b) ->
                Some (Plan.Runtime_filter_build { b with keys = [] })
            | _ -> None)
          (rf_orca ()) );
    ( "builder with a negative cardinality estimate",
      "filters/bad-estimate",
      fun () ->
        once
          (function
            | Plan.Runtime_filter_build ({ rows_est; _ } as b)
              when rows_est >= 0 ->
                Some (Plan.Runtime_filter_build { b with rows_est = -1 })
            | _ -> None)
          (rf_orca ()) );
    (* --- pass 6: pruning soundness --- *)
    ( "selector predicate shifted to another month",
      "pruning/over-pruned",
      fun () ->
        (* the DynScan's filter still asks for June; a selector that
           statically selects only August has over-pruned *)
        once
          (function
            | Plan.Partition_selector
                ({ keys = k :: _; predicates = _ :: _; _ } as s) ->
                Some
                  (Plan.Partition_selector
                     { s with
                       predicates =
                         [ Some
                             (Expr.ge (Expr.col k) (Expr.date "2013-08-01"))
                         ] })
            | _ -> None)
          (static_orca ()) );
    ( "selector predicate made unsatisfiable",
      "pruning/over-pruned",
      fun () ->
        once
          (function
            | Plan.Partition_selector
                ({ keys = k :: _; predicates = _ :: _; _ } as s) ->
                Some
                  (Plan.Partition_selector
                     { s with
                       predicates =
                         [ Some
                             (Expr.lt (Expr.col k) (Expr.date "2011-01-01"))
                         ] })
            | _ -> None)
          (static_orca ()) );
    ( "streaming join selector narrowed to a static point",
      "pruning/over-pruned",
      fun () ->
        (* the join's runtime selection is sound because it is driven by
           actual dimension values; freezing it into a static equality the
           reachable predicates do not imply is not *)
        once
          (function
            | Plan.Partition_selector
                ({ keys = k :: _; predicates = _ :: _; _ } as s) ->
                Some
                  (Plan.Partition_selector
                     { s with
                       predicates =
                         [ Some
                             (Expr.eq (Expr.col k) (Expr.date "2011-02-15"))
                         ] })
            | _ -> None)
          (dpe_orca ()) );
    ( "scan filter silently widened past the selection",
      "pruning/over-pruned",
      fun () ->
        (* shift the DynScan's date range ~2 months; the selector still
           selects June only, excluding partitions the filter permits *)
        once
          (function
            | Plan.Dynamic_scan ({ filter = Some f; _ } as s) ->
                Some
                  (Plan.Dynamic_scan
                     { s with
                       filter =
                         Some
                           (emap
                              (function
                                | Expr.Const (Value.Date d) ->
                                    Expr.Const
                                      (Value.Date (Date.add_days d 62))
                                | e -> e)
                              f) })
            | _ -> None)
          (static_orca ()) );
    ( "static-exclusion survivor dropped from the Append",
      "pruning/over-pruned",
      fun () ->
        once
          (function
            | Plan.Append (Plan.Table_scan _ :: rest) when rest <> [] ->
                Some (Plan.Append rest)
            | _ -> None)
          (static_planner ()) );
    ( "all but one survivor dropped from the Append",
      "pruning/over-pruned",
      fun () ->
        once
          (function
            | Plan.Append ((Plan.Table_scan _ :: _ :: _) as cs) ->
                Some (Plan.Append [ List.hd cs ])
            | _ -> None)
          (static_planner ()) );
    ( "surviving Append child's filter stamped false",
      "pruning/over-pruned",
      fun () ->
        once
          (function
            | Plan.Append (Plan.Table_scan ({ filter = Some f; _ } as s) :: rest)
              when (not (Expr.equal f Expr.false_)) && rest <> [] ->
                Some
                  (Plan.Append
                     (Plan.Table_scan { s with filter = Some Expr.false_ }
                     :: rest))
            | _ -> None)
          (static_planner ()) );
    ( "statically-empty shape with the proving filter removed",
      "pruning/over-pruned",
      fun () ->
        (* PR-4's single-false-leaf Append is sanctioned only while the
           literal false is there; without it the plan just reads one of 36
           permitted partitions *)
        once
          (function
            | Plan.Table_scan ({ filter = Some f; _ } as s)
              when Expr.equal f Expr.false_ ->
                Some (Plan.Table_scan { s with filter = None })
            | _ -> None)
          (adhoc W.Runner.Legacy_planner
             "SELECT count(*) FROM store_sales WHERE ss_sold_date < \
              '2010-01-01'") );
  ]

let test_mutations_killed () =
  List.iter
    (fun (name, code, build) ->
      let mutated = build () in
      let diags = Verify.check ~catalog:(catalog ()) mutated in
      Alcotest.(check bool)
        (Printf.sprintf "%s: rejected" name)
        true (Diag.has_errors diags);
      Alcotest.(check bool)
        (Printf.sprintf "%s: flagged as %s (got: %s)" name code
           (String.concat "; " (List.map Diag.to_string diags)))
        true (Diag.has_code code diags))
    mutations

(* Pass-6 warnings: statically-dead Append branches and contradictory
   filters do not make the plan wrong — they make it do provably-useless
   work — so the pruning pass reports them at Warning severity. *)
let has_warning code diags =
  List.exists
    (fun (d : Diag.t) -> d.code = code && d.severity = Diag.Warning)
    diags

let ss_part_key rel =
  let t = Cat.find (catalog ()) "store_sales" in
  List.hd (Mpp_catalog.Table.part_key_colrefs t ~rel)

let test_pruning_warnings () =
  let dead_child =
    once
      (function
        | Plan.Append
            (Plan.Table_scan ({ rel; filter = Some f; _ } as s) :: rest)
          when (not (Expr.equal f Expr.false_)) && rest <> [] ->
            let k = ss_part_key rel in
            Some
              (Plan.Append
                 (Plan.Table_scan
                    { s with
                      filter =
                        Some (Expr.lt (Expr.col k) (Expr.date "2011-01-01"))
                    }
                 :: rest))
        | _ -> None)
      (static_planner ())
  in
  let d1 = Verify.check ~catalog:(catalog ()) dead_child in
  Alcotest.(check bool) "dead-append-child warned" true
    (has_warning "pruning/dead-append-child" d1);
  Alcotest.(check bool) "dead-append-child is not an error" true
    (not (Diag.has_code "pruning/dead-append-child" (Diag.errors d1)));
  let contradictory =
    once
      (function
        | Plan.Dynamic_scan ({ rel; filter = Some f; _ } as s) ->
            let k = ss_part_key rel in
            Some
              (Plan.Dynamic_scan
                 { s with
                   filter =
                     Some
                       (Expr.conj
                          [ f;
                            Expr.lt (Expr.col k) (Expr.date "2011-01-01")
                          ])
                 })
        | _ -> None)
      (static_orca ())
  in
  let d2 = Verify.check ~catalog:(catalog ()) contradictory in
  Alcotest.(check bool) "contradictory-filter warned" true
    (has_warning "pruning/contradictory-filter" d2);
  Alcotest.(check bool) "contradictory-filter is not an error" true
    (not (Diag.has_code "pruning/contradictory-filter" (Diag.errors d2)))

let test_assert_valid_raises () =
  let _, _, build = List.hd mutations in
  match Verify.assert_valid ~catalog:(catalog ()) ~what:"mutant" (build ()) with
  | () -> Alcotest.fail "assert_valid accepted a corrupt plan"
  | exception Verify.Rejected (what, errs) ->
      Alcotest.(check string) "what" "mutant" what;
      Alcotest.(check bool) "errors nonempty" true (errs <> [])

(* ------------------------------------------------------------------ *)
(* Soundness: real plans verify clean                                  *)
(* ------------------------------------------------------------------ *)

let test_workload_plans_clean () =
  List.iter
    (fun (qu : W.Queries.query) ->
      List.iter
        (fun (kname, kind) ->
          let plan = W.Runner.optimize_with (Lazy.force env) kind qu in
          let diags = Verify.check ~catalog:(catalog ()) plan in
          Alcotest.(check (list string))
            (Printf.sprintf "%s [%s]" qu.W.Queries.name kname)
            []
            (List.map Diag.to_string diags))
        [ ("orca", W.Runner.Orca); ("planner", W.Runner.Legacy_planner) ])
    W.Queries.all

let test_stamped_nparts_present () =
  (* the optimizer stamps a concrete partition count on statically
     analyzable scans, and the accounting pass agrees with it *)
  let plan = static_orca () in
  let found = ref false in
  ignore
    (Plan.fold
       (fun () p ->
         match p with
         | Plan.Dynamic_scan { ds_nparts; _ } ->
             found := true;
             Alcotest.(check bool) "nparts stamped" true (ds_nparts >= 0)
         | _ -> ())
       () plan);
  Alcotest.(check bool) "plan has a DynamicScan" true !found

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then false
    else if String.sub s i n = sub then true
    else go (i + 1)
  in
  go 0

let test_pp_report_clean () =
  let report = Format.asprintf "%a" Verify.pp_report [] in
  Alcotest.(check bool) "mentions clean" true (contains report "clean");
  let one =
    [ Diag.make ~pass:Diag.Structure ~code:"structure/unmatched-scan"
        ~path:"Motion/0.Agg" "DynamicScan 7 has no PartitionSelector" ]
  in
  let report = Format.asprintf "%a" Verify.pp_report one in
  Alcotest.(check bool) "mentions code" true
    (contains report "structure/unmatched-scan");
  Alcotest.(check bool) "counts errors" true (contains report "1 error(s)")

(* ------------------------------------------------------------------ *)
(* Fuzz: random queries over the demo schema, both optimizers          *)
(* ------------------------------------------------------------------ *)

(* A small SQL grammar over the TPC-DS demo schema: per-fact-table
   aggregates with random date/key ranges, star joins against [date_dim]
   and [item], GROUP BYs.  Every generated query exercises partition
   selection machinery in at least one optimizer. *)
let sql_gen : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let date_facts =
    [ ("store_sales", "ss_sold_date", "ss_price", "ss_item");
      ("catalog_sales", "cs_sold_date", "cs_price", "cs_item");
      ("store_returns", "sr_returned_date", "sr_qty", "sr_item");
      ("web_returns", "wr_returned_date", "wr_qty", "wr_item");
      ("catalog_returns", "cr_returned_date", "cr_qty", "cr_item");
      ("inventory", "inv_date", "inv_qty", "inv_item") ]
  in
  let date_lit =
    map2
      (fun y m -> Printf.sprintf "'%04d-%02d-01'" (2011 + y) (1 + m))
      (int_range 0 2) (int_range 0 11)
  in
  let agg =
    oneofl
      [ (fun _ -> "count(*)");
        (fun m -> "sum(" ^ m ^ ")");
        (fun m -> "avg(" ^ m ^ ")");
        (fun m -> "min(" ^ m ^ ")");
        (fun m -> "max(" ^ m ^ ")") ]
  in
  let render_agg a measure = a measure in
  let static_q =
    let* t, dcol, measure, _ = oneofl date_facts in
    let* a = agg in
    let* lo = date_lit and* hi = date_lit in
    let* shape = int_range 0 2 in
    return
      (match shape with
      | 0 ->
          Printf.sprintf "SELECT %s FROM %s WHERE %s >= %s"
            (render_agg a measure) t dcol lo
      | 1 ->
          Printf.sprintf "SELECT %s FROM %s WHERE %s BETWEEN %s AND %s"
            (render_agg a measure) t dcol (min lo hi) (max lo hi)
      | _ ->
          Printf.sprintf "SELECT %s FROM %s WHERE %s < %s AND %s > 0"
            (render_agg a measure) t dcol lo measure)
  in
  let web_sales_q =
    let* a = agg in
    let* lo = int_range 850 1050 in
    let* width = int_range 1 120 in
    return
      (Printf.sprintf
         "SELECT %s FROM web_sales WHERE ws_sold_date_id BETWEEN %d AND %d"
         (render_agg a "ws_price") lo (lo + width))
  in
  let datedim_join_q =
    let* t, dcol, measure, _ = oneofl date_facts in
    let* a = agg in
    let* y = int_range 2011 2013 and* m = int_range 1 12 in
    let* with_month = bool in
    return
      (Printf.sprintf
         "SELECT %s FROM %s f, date_dim d WHERE f.%s = d.d_date AND d.d_year \
          = %d%s"
         (render_agg a ("f." ^ measure)) t dcol y
         (if with_month then Printf.sprintf " AND d.d_month = %d" m else ""))
  in
  let item_join_q =
    let* t, dcol, measure, icol = oneofl date_facts in
    let* lo = date_lit in
    return
      (Printf.sprintf
         "SELECT i.i_category, sum(f.%s) FROM %s f, item i WHERE f.%s = \
          i.i_id AND f.%s >= %s GROUP BY i.i_category"
         measure t icol dcol lo)
  in
  let multilevel_q =
    let* lo = date_lit in
    let* ch = oneofl [ "catalog"; "web"; "store" ] in
    return
      (Printf.sprintf
         "SELECT count(*) FROM catalog_returns WHERE cr_returned_date >= %s \
          AND cr_channel = '%s'"
         lo ch)
  in
  frequency
    [ (3, static_q); (1, web_sales_q); (3, datedim_join_q); (2, item_join_q);
      (1, multilevel_q) ]

let fuzz_count = 300 (* × 2 optimizers = 600 verified plans *)

let fuzz_test =
  QCheck2.Test.make ~name:"fuzzed queries verify clean" ~count:fuzz_count
    ~print:(fun s -> s)
    sql_gen
    (fun sql ->
      List.for_all
        (fun kind ->
          let plan = adhoc kind sql in
          Verify.check ~catalog:(catalog ()) plan = [])
        [ W.Runner.Orca; W.Runner.Legacy_planner ])

let () =
  Alcotest.run "verify"
    [ ("mutation kill",
       [ Alcotest.test_case "all corruptions rejected" `Quick
           test_mutations_killed;
         Alcotest.test_case "pruning warnings" `Quick test_pruning_warnings;
         Alcotest.test_case "assert_valid raises" `Quick
           test_assert_valid_raises ]);
      ("soundness",
       [ Alcotest.test_case "all workload plans clean" `Slow
           test_workload_plans_clean;
         Alcotest.test_case "nparts stamped" `Quick
           test_stamped_nparts_present;
         Alcotest.test_case "pp_report clean" `Quick test_pp_report_clean ]);
      ("fuzz",
       [ QCheck_alcotest.to_alcotest ~long:true fuzz_test ]) ]

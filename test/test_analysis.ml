(** Tests for the predicate abstract-interpretation engine (lib/analysis).

    Three layers:

    - {b units}: [scan_env] bounds, the decision procedures, expression
      simplification, [expr_of_set], the runtime-filter min-max cross-check
      and the linter, all on the hand-built [orders] schema;
    - {b properties}: QCheck pins the abstract domain to the concrete
      evaluator — whatever [Expr.eval] does on an in-env value, the
      abstract result admits it, [restrict] keeps satisfying values,
      [always_true] forces acceptance, and [simplify] is row-for-row
      equivalent under filter semantics;
    - {b plan equivalence}: simplification on vs off produces identical
      result sets for every query of the evaluation workload under both
      optimizers and for generated big-join queries, and the implied
      transitive restriction demonstrably cuts the partitions the
      [ss_sr_transitive_date] query opens (36 → 3 under both optimizers,
      36 with the pass disabled). *)

module A = Mpp_analysis.Analysis
module W = Mpp_workload
module Plan = Mpp_plan.Plan
module Cat = Mpp_catalog.Catalog
module Table = Mpp_catalog.Table
open Mpp_expr

let d = Expr.date
let key = Colref.make ~rel:0 ~index:2 ~name:"date" ~dtype:Value.Tdate
let ikey = Colref.make ~rel:0 ~index:0 ~name:"id" ~dtype:Value.Tint

let orders = lazy (Support.orders_schema ())
let orders_env () =
  let catalog, t = Lazy.force orders in
  (catalog, t, A.scan_env ~catalog ~rel:0 t.Table.oid)

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let test_scan_env () =
  let _, _, env = orders_env () in
  let av = A.find env key in
  Alcotest.(check bool) "storage holds no NULLs" false av.A.nullable;
  Alcotest.(check bool) "mid-2012 inside the union of leaf bounds" true
    (Interval.Set.contains av.A.range (Value.Date (Date.of_ymd 2012 6 15)));
  Alcotest.(check bool) "2011 outside" false
    (Interval.Set.contains av.A.range (Value.Date (Date.of_ymd 2011 12 31)));
  Alcotest.(check bool) "2014 outside" false
    (Interval.Set.contains av.A.range (Value.Date (Date.of_ymd 2014 1 1)));
  (* non-key columns are unconstrained but still non-nullable *)
  let id = A.find env ikey in
  Alcotest.(check bool) "id unconstrained" true
    (Interval.Set.is_full id.A.range);
  Alcotest.(check bool) "id non-nullable" false id.A.nullable

let test_decisions () =
  let _, _, env = orders_env () in
  Alcotest.(check bool) "below the table range contradicts" true
    (A.contradicts env (Expr.lt (Expr.col key) (d "2010-01-01")));
  Alcotest.(check bool) "satisfiable filter does not" false
    (A.contradicts env (Expr.ge (Expr.col key) (d "2013-06-01")));
  Alcotest.(check bool) "covering filter is always true" true
    (A.always_true env (Expr.ge (Expr.col key) (d "2012-01-01")));
  Alcotest.(check bool) "partial filter is not" false
    (A.always_true env (Expr.ge (Expr.col key) (d "2013-01-01")));
  Alcotest.(check bool) "narrower range implies wider" true
    (A.implies env
       (Expr.ge (Expr.col key) (d "2013-06-01"))
       (Expr.ge (Expr.col key) (d "2013-01-01")));
  Alcotest.(check bool) "wider does not imply narrower" false
    (A.implies env
       (Expr.ge (Expr.col key) (d "2013-01-01"))
       (Expr.ge (Expr.col key) (d "2013-06-01")))

let test_simplify_expr () =
  let _, _, env = orders_env () in
  let red = ref 0 and con = ref 0 in
  let report k _ =
    match k with `Redundant -> incr red | `Contradiction -> incr con
  in
  (* the second conjunct restates the table bound: dropped as redundant *)
  let e =
    Expr.conj
      [ Expr.ge (Expr.col key) (d "2013-06-01");
        Expr.ge (Expr.col key) (d "2012-01-01") ]
  in
  let s = A.simplify ~report env e in
  Alcotest.(check int) "one redundant conjunct reported" 1 !red;
  Alcotest.(check bool) "redundant conjunct dropped" true
    (Expr.equal s (Expr.ge (Expr.col key) (d "2013-06-01")));
  (* pairwise-contradictory conjuncts collapse the conjunction *)
  let e2 =
    Expr.conj
      [ Expr.ge (Expr.col key) (d "2013-06-01");
        Expr.lt (Expr.col key) (d "2013-01-01") ]
  in
  let s2 = A.simplify ~report env e2 in
  Alcotest.(check bool) "contradiction collapses to false" true
    (Expr.equal s2 Expr.false_);
  Alcotest.(check bool) "contradiction reported" true (!con >= 1);
  (* nothing to do: the very same expression comes back *)
  let e3 = Expr.ge (Expr.col key) (d "2013-06-01") in
  Alcotest.(check bool) "no-op returns the input physically" true
    (A.simplify env e3 == e3)

let test_minmax_violations () =
  let catalog, t, _ = orders_env () in
  let child =
    Plan.Table_scan
      { rel = 0;
        table_oid = t.Table.oid;
        filter = Some (Expr.ge (Expr.col key) (d "2013-01-01"));
        guard = None
      }
  in
  let date y m dy = Value.Date (Date.of_ymd y m dy) in
  let check_with lo hi =
    A.minmax_violations ~catalog ~child ~keys:[ key ]
      ~minmax:(fun _ -> Some (lo, hi))
  in
  Alcotest.(check (list string))
    "summary inside the static bounds is clean" []
    (check_with (date 2013 3 1) (date 2013 11 30));
  Alcotest.(check bool) "low endpoint below the filter bound flagged" true
    (check_with (date 2011 5 1) (date 2013 11 30) <> []);
  Alcotest.(check bool) "high endpoint past the table bound flagged" true
    (check_with (date 2013 3 1) (date 2015 1 1) <> []);
  Alcotest.(check (list string))
    "no non-null key seen is clean" []
    (A.minmax_violations ~catalog ~child ~keys:[ key ] ~minmax:(fun _ -> None))

let test_lint_plan () =
  let catalog, t, _ = orders_env () in
  let scan filter =
    Plan.Table_scan { rel = 0; table_oid = t.Table.oid; filter; guard = None }
  in
  let fs =
    A.Lint.plan ~catalog
      (Plan.Filter
         { pred = Expr.lt (Expr.col key) (d "2010-01-01");
           child = scan None
         })
  in
  Alcotest.(check bool) "contradictory filter linted" true
    (List.exists (fun f -> f.A.Lint.code = "lint/contradiction") fs);
  let fs2 =
    A.Lint.plan ~catalog
      (Plan.Filter
         { pred = Expr.ge (Expr.col key) (d "2012-01-01"); child = scan None })
  in
  Alcotest.(check bool) "covering filter linted as redundant" true
    (List.exists (fun f -> f.A.Lint.code = "lint/redundant-conjunct") fs2);
  Alcotest.(check (list string)) "selective filter is lint-clean" []
    (List.map
       (fun f -> f.A.Lint.code)
       (A.Lint.plan ~catalog
          (scan (Some (Expr.ge (Expr.col key) (d "2013-06-01"))))))

(* ------------------------------------------------------------------ *)
(* Properties: the abstract domain vs the concrete evaluator           *)
(* ------------------------------------------------------------------ *)

(* An environment whose [key] column can take exactly [union s (point v)],
   plus a concrete row binding [key := v]: by construction the row is
   in-env, so every abstract claim must admit what [Expr.eval] computes. *)
let env_and_row_gen =
  QCheck2.Gen.(
    map2
      (fun s v ->
        let range = Interval.Set.union s (Interval.Set.point v) in
        let aenv = A.set A.env_top key { A.range; nullable = false } in
        let eenv =
          { Expr.col = (fun _ -> v); param = (fun _ -> Value.Null) }
        in
        (aenv, eenv, v))
      Support.interval_set_gen Support.int_value_gen)

let with_pred g =
  QCheck2.Gen.(pair g (Support.predicate_gen key))

let prop_aeval_pred_sound =
  QCheck2.Test.make ~count:1000
    ~name:"aeval_pred admits the concrete three-valued outcome"
    (with_pred env_and_row_gen)
    (fun ((aenv, eenv, _), p) ->
      let ab = A.aeval_pred aenv p in
      match Expr.eval eenv p with
      | Value.Bool true -> ab.A.can_t
      | Value.Bool false -> ab.A.can_f
      | _ -> ab.A.can_n)

let prop_restrict_sound =
  QCheck2.Test.make ~count:1000
    ~name:"restrict keeps every satisfying value"
    (with_pred env_and_row_gen)
    (fun ((aenv, eenv, v), p) ->
      (not (Expr.eval_pred eenv p))
      ||
      let env' = A.restrict aenv p in
      (not (A.is_bottom env'))
      && Interval.Set.contains (A.find env' key).A.range v)

let prop_contradicts_sound =
  QCheck2.Test.make ~count:1000
    ~name:"contradicts means no in-env row passes"
    (with_pred env_and_row_gen)
    (fun ((aenv, eenv, _), p) ->
      (not (A.contradicts aenv p)) || not (Expr.eval_pred eenv p))

let prop_always_true_sound =
  QCheck2.Test.make ~count:1000
    ~name:"always_true means every in-env row passes"
    (with_pred env_and_row_gen)
    (fun ((aenv, eenv, _), p) ->
      (not (A.always_true aenv p)) || Expr.eval_pred eenv p)

let prop_simplify_row_equivalent =
  QCheck2.Test.make ~count:1000
    ~name:"simplify preserves filter semantics row-for-row"
    (with_pred env_and_row_gen)
    (fun ((aenv, eenv, _), p) ->
      Expr.eval_pred eenv (A.simplify aenv p) = Expr.eval_pred eenv p)

let prop_expr_of_set_membership =
  QCheck2.Test.make ~count:1000
    ~name:"expr_of_set evaluates to set membership"
    QCheck2.Gen.(pair Support.interval_set_gen Support.int_value_gen)
    (fun (s, v) ->
      let eenv = { Expr.col = (fun _ -> v); param = (fun _ -> Value.Null) } in
      Expr.eval_pred eenv (A.expr_of_set ikey s) = Interval.Set.contains s v)

(* ------------------------------------------------------------------ *)
(* Plan-level equivalence: simplification must never change results    *)
(* ------------------------------------------------------------------ *)

let wenv = lazy (W.Runner.setup_env ~scale:1 ~nsegments:4 ())

(* Like [W.Runner.optimize_with], but with the simplification pass under
   test switched explicitly (the runner always uses the defaults). *)
let optimize_plain env kind ~simplify (qu : W.Queries.query) =
  let lg = Mpp_sql.Sql.to_logical env.W.Runner.catalog qu.W.Queries.sql in
  match kind with
  | `Planner ->
      let config = { Mpp_planner.Planner.default_config with simplify } in
      Mpp_planner.Planner.plan
        (Mpp_planner.Planner.create ~config ~catalog:env.W.Runner.catalog ())
        lg
  | `Orca ->
      Mpp_stats.Stats_source.clear_row_scales env.W.Runner.stats;
      List.iter
        (fun (name, factor) ->
          let t = Cat.find env.W.Runner.catalog name in
          Mpp_stats.Stats_source.set_row_scale env.W.Runner.stats
            ~table_oid:t.Table.oid ~factor)
        qu.W.Queries.misestimates;
      let config = { Orca.Optimizer.default_config with simplify } in
      let opt =
        Orca.Optimizer.create ~config ~stats:env.W.Runner.stats
          ~catalog:env.W.Runner.catalog ()
      in
      let plan = Orca.Optimizer.optimize opt lg in
      Mpp_stats.Stats_source.clear_row_scales env.W.Runner.stats;
      plan

let run_rows env plan =
  fst
    (Mpp_exec.Exec.run ~catalog:env.W.Runner.catalog
       ~storage:env.W.Runner.storage plan)

let test_workload_simplify_equivalence () =
  let env = Lazy.force wenv in
  List.iter
    (fun (qu : W.Queries.query) ->
      List.iter
        (fun (kname, kind) ->
          let on_ = run_rows env (optimize_plain env kind ~simplify:true qu) in
          let off =
            run_rows env (optimize_plain env kind ~simplify:false qu)
          in
          Support.check_rows_equal
            (Printf.sprintf "%s [%s] simplify on/off" qu.W.Queries.name kname)
            on_ off)
        [ ("orca", `Orca); ("planner", `Planner) ])
    W.Queries.all

let test_biggen_simplify_equivalence () =
  List.iter
    (fun spec ->
      let benv = W.Biggen.generate spec in
      let orca simplify =
        let config = { Orca.Optimizer.default_config with simplify } in
        Orca.Optimizer.optimize
          (Orca.Optimizer.create ~config ~stats:benv.W.Biggen.stats
             ~catalog:benv.W.Biggen.catalog ())
          benv.W.Biggen.logical
      in
      let planner simplify =
        let config = { Mpp_planner.Planner.default_config with simplify } in
        Mpp_planner.Planner.plan
          (Mpp_planner.Planner.create ~config ~catalog:benv.W.Biggen.catalog
             ())
          benv.W.Biggen.logical
      in
      let run p =
        fst
          (Mpp_exec.Exec.run ~catalog:benv.W.Biggen.catalog
             ~storage:benv.W.Biggen.storage p)
      in
      let base = run (orca false) in
      Support.check_rows_equal
        (benv.W.Biggen.name ^ ": orca simplified")
        base
        (run (orca true));
      Support.check_rows_equal
        (benv.W.Biggen.name ^ ": planner unsimplified")
        base
        (run (planner false));
      Support.check_rows_equal
        (benv.W.Biggen.name ^ ": planner simplified")
        base
        (run (planner true)))
    [ { W.Biggen.shape = W.Biggen.Star; nrels = 5; seed = 11 };
      { W.Biggen.shape = W.Biggen.Chain; nrels = 6; seed = 3 };
      { W.Biggen.shape = W.Biggen.Clique; nrels = 4; seed = 8 } ]

let test_transitive_pruning () =
  (* the acceptance scenario: the range predicate sits on store_returns,
     and only the equi-join equivalence class carries it onto the
     store_sales partition key — the strengthening pass turns 36 opened
     partitions into 3 under both optimizers, with identical results *)
  let env = Lazy.force wenv in
  let qu = W.Queries.find "ss_sr_transitive_date" in
  let baseline = ref [] in
  List.iter
    (fun kind ->
      let r = W.Runner.run env kind qu in
      let ss = List.assoc "store_sales" r.W.Runner.parts_scanned in
      Alcotest.(check int)
        (W.Runner.optimizer_kind_to_string kind ^ ": store_sales 3 of 36")
        3 ss;
      if !baseline = [] then baseline := r.W.Runner.rows
      else Support.check_rows_equal "optimizers agree" !baseline r.W.Runner.rows)
    [ W.Runner.Orca; W.Runner.Legacy_planner ];
  (* Orca's join-driven DPE still prunes at runtime with the pass off; the
     legacy planner has no runtime fallback here, so disabling the pass
     exposes the full table *)
  let off = optimize_plain env `Planner ~simplify:false qu in
  let rows, metrics =
    Mpp_exec.Exec.run ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage
      off
  in
  let ss_oid = (Cat.find env.W.Runner.catalog "store_sales").Table.oid in
  Alcotest.(check int) "without the pass every partition opens" 36
    (Mpp_exec.Metrics.parts_scanned_of metrics ~root_oid:ss_oid);
  Support.check_rows_equal "pruning preserves the answer" !baseline rows

let () =
  Alcotest.run "analysis"
    [ ("units",
       [ Alcotest.test_case "scan_env bounds" `Quick test_scan_env;
         Alcotest.test_case "decisions" `Quick test_decisions;
         Alcotest.test_case "simplify expressions" `Quick test_simplify_expr;
         Alcotest.test_case "minmax cross-check" `Quick test_minmax_violations;
         Alcotest.test_case "linter" `Quick test_lint_plan ]);
      ("soundness properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_aeval_pred_sound; prop_restrict_sound; prop_contradicts_sound;
           prop_always_true_sound; prop_simplify_row_equivalent;
           prop_expr_of_set_membership ]);
      ("plan equivalence",
       [ Alcotest.test_case "workload, simplify on/off" `Slow
           test_workload_simplify_equivalence;
         Alcotest.test_case "big joins, simplify on/off" `Slow
           test_biggen_simplify_equivalence;
         Alcotest.test_case "transitive pruning (36 -> 3)" `Quick
           test_transitive_pruning ]) ]

(** [mppsim] — a command-line front end to the simulated MPP cluster.

    Loads the TPC-DS-style demo schema (the one the paper's evaluation uses)
    and then explains or executes SQL against it with either optimizer:

    {v
    mppsim explain "SELECT count(*) FROM store_sales WHERE ss_sold_date >= '2013-10-01'"
    mppsim explain --analyze "SELECT ..."
    mppsim run --optimizer planner --trace out.json "SELECT ..."
    mppsim check --workload
    mppsim lint --workload
    mppsim repl
    mppsim schema
    v} *)

open Cmdliner
module Plan = Mpp_plan.Plan
module W = Mpp_workload
module Obs = Mpp_obs.Obs
module Json = Mpp_obs.Json

type opt_kind = Orca | Planner

let env_of ~scale ~segments =
  W.Runner.setup_env ~scale ~nsegments:segments ()

(* When tracing, also explore the §3.1 memo on the query's relational core
   (the shapes {!Orca.Memo} supports), so the trace carries the [memo.*]
   exploration counters — groups, group expressions, requests, candidates —
   for this query; unsupported shapes are silently skipped. *)
let trace_memo_exploration env logical =
  if Obs.enabled (Obs.current ()) then begin
    let rec core = function
      | Orca.Logical.Aggregate { child; _ }
      | Orca.Logical.Project { child; _ }
      | Orca.Logical.Sort { child; _ }
      | Orca.Logical.Limit { child; _ } ->
          core child
      | l -> l
    in
    try
      ignore
        (Orca.Memo.best_plan ~stats:env.W.Runner.stats
           ~catalog:env.W.Runner.catalog (core logical))
    with Invalid_argument _ -> ()
  end

(* Plan plus the optimizer's per-node plan-time row estimates (stamped
   against the same stats the costing saw); the legacy planner has no
   cardinality model, so its estimate array is empty. *)
let plan_est_of ?(opt_domains = Orca.Optimizer.default_opt_domains ()) env
    kind ~selection sql =
  let logical = Mpp_sql.Sql.to_logical env.W.Runner.catalog sql in
  trace_memo_exploration env logical;
  match kind with
  | Planner ->
      ( Mpp_planner.Planner.plan
          (Mpp_planner.Planner.create ~catalog:env.W.Runner.catalog ())
          logical,
        Mpp_plan.Est.none )
  | Orca ->
      let config =
        { Orca.Optimizer.default_config with
          enable_partition_selection = selection;
          opt_domains }
      in
      let opt =
        Orca.Optimizer.create ~config ~stats:env.W.Runner.stats
          ~catalog:env.W.Runner.catalog ()
      in
      let plan = Orca.Optimizer.optimize opt logical in
      let est =
        Mpp_plan.Est.of_plan
          ~estimate:(Orca.Optimizer.row_estimator opt logical)
          plan
      in
      (plan, est)

let plan_of env kind ~selection sql = fst (plan_est_of env kind ~selection sql)

let print_metrics env metrics =
  (* every partitioned table in the catalog, not only the TPC-DS facts:
     ad-hoc schemas and dimension partitioning report correctly too *)
  let partitioned =
    List.filter Mpp_catalog.Table.is_partitioned
      (Mpp_catalog.Catalog.tables env.W.Runner.catalog)
  in
  let scanned =
    List.filter_map
      (fun (t : Mpp_catalog.Table.t) ->
        let n =
          Mpp_exec.Metrics.parts_scanned_of metrics
            ~root_oid:t.Mpp_catalog.Table.oid
        in
        if n > 0 then
          Some
            (Printf.sprintf "%s: %d/%d" t.Mpp_catalog.Table.name n
               (Mpp_catalog.Table.nparts t))
        else None)
      partitioned
  in
  Printf.printf "tuples scanned: %d; partitions scanned: %s\n"
    metrics.Mpp_exec.Metrics.tuples_scanned
    (if scanned = [] then "(none partitioned)" else String.concat ", " scanned);
  (* runtime-join-filter effect: only reported when a filter actually ran,
     so filter-free plans (and --no-runtime-filters runs) stay unchanged *)
  let m = metrics in
  if m.Mpp_exec.Metrics.filter_built > 0 then
    Printf.printf
      "runtime filters: built=%d; rows dropped at scan=%d, pre-Motion=%d; \
       Motion rows saved=%d\n"
      m.Mpp_exec.Metrics.filter_built m.Mpp_exec.Metrics.rows_filtered_scan
      m.Mpp_exec.Metrics.rows_filtered_motion
      m.Mpp_exec.Metrics.motion_rows_saved

(* ---------------- tracing ---------------- *)

let sink_for trace = match trace with None -> Obs.null | Some _ -> Obs.create ()

(* Export the process-wide trace plus whatever extra sections the command
   accumulated (EXPLAIN node list, executor metrics). *)
let write_trace trace sink extras =
  match trace with
  | None -> ()
  | Some file ->
      Obs.uninstall ();
      let json =
        match Obs.to_json sink with
        | Json.Obj fields -> Json.Obj (fields @ extras)
        | j -> j
      in
      Json.to_file file json;
      Printf.eprintf "trace written to %s\n%!" file

(* Whether the executor runs annotated filters: the [--no-runtime-filters]
   flag wins, then [MPP_RUNTIME_FILTERS=0] (or [false]/[off]), default on.
   Plans are identical either way — this is purely an executor knob. *)
let runtime_filters_on ~no_rf =
  (not no_rf)
  &&
  match Sys.getenv_opt "MPP_RUNTIME_FILTERS" with
  | Some ("0" | "false" | "off") -> false
  | Some _ | None -> true

let do_explain ?(analyze = false) ?trace ?domains ?opt_domains
    ?(runtime_filters = true) env kind selection sql =
  let sink = sink_for trace in
  if Obs.enabled sink then Obs.install sink;
  let plan, est = plan_est_of ?opt_domains env kind ~selection sql in
  let extras =
    if analyze then begin
      let _rows, metrics, stats =
        Mpp_exec.Exec.run_analyze ?domains ~runtime_filters
          ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage plan
      in
      print_string (Mpp_exec.Explain.analyze ~est plan stats);
      print_metrics env metrics;
      [ ("explain", Mpp_exec.Explain.to_json ~est plan stats);
        ("metrics", Mpp_exec.Metrics.to_json metrics) ]
    end
    else begin
      print_endline (Plan.to_string plan);
      Printf.printf "plan size: %.1f KB, %d nodes\n"
        (Mpp_plan.Plan_size.kilobytes ~catalog:env.W.Runner.catalog plan)
        (Plan.node_count plan);
      []
    end
  in
  write_trace trace sink extras

let print_rows rows dt =
  List.iteri
    (fun i row ->
      if i < 50 then begin
        Array.iteri
          (fun j v ->
            if j > 0 then print_string " | ";
            print_string (Mpp_expr.Value.to_string v))
          row;
        print_newline ()
      end
      else if i = 50 then Printf.printf "... (%d rows)\n" (List.length rows))
    rows;
  Printf.printf "(%d rows in %.2f ms)\n" (List.length rows) (dt *. 1000.0)

let do_run ?trace ?stats_json ?domains ?opt_domains ?(runtime_filters = true)
    env kind selection sql =
  let sink = sink_for trace in
  if Obs.enabled sink then Obs.install sink;
  let plan, est = plan_est_of ?opt_domains env kind ~selection sql in
  match stats_json with
  | None ->
      let t0 = Unix.gettimeofday () in
      let rows, metrics =
        Mpp_exec.Exec.run ~verify:true ?domains ~runtime_filters
          ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage plan
      in
      let dt = Unix.gettimeofday () -. t0 in
      print_rows rows dt;
      print_metrics env metrics;
      write_trace trace sink [ ("metrics", Mpp_exec.Metrics.to_json metrics) ]
  | Some file ->
      (* profiled run: per-node stats, per-domain pool accounting and
         channel occupancy, all dumped to one JSON artifact *)
      let stats = Mpp_exec.Node_stats.create () in
      let ctx =
        Mpp_exec.Exec.create_ctx ~verify:true ?domains ~runtime_filters ~stats
          ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage ()
      in
      Mpp_exec.Dpool.reset_stats ctx.Mpp_exec.Exec.pool;
      Mpp_exec.Dpool.set_accounting ctx.Mpp_exec.Exec.pool true;
      let t0 = Unix.gettimeofday () in
      let res = Mpp_exec.Exec.exec ctx plan in
      let dt = Unix.gettimeofday () -. t0 in
      Mpp_exec.Dpool.set_accounting ctx.Mpp_exec.Exec.pool false;
      let rows =
        List.concat
          (Array.to_list
             (Array.map Mpp_storage.Vec.to_list res.Mpp_exec.Exec.rows))
      in
      let metrics = Mpp_exec.Exec.metrics ctx in
      print_rows rows dt;
      print_metrics env metrics;
      Json.to_file file
        (Json.Obj
           [ ("query", Json.String sql);
             ("wall_ms", Json.Float (dt *. 1000.0));
             ("explain", Mpp_exec.Explain.to_json ~est plan stats);
             ("metrics", Mpp_exec.Metrics.to_json metrics);
             ("dpool", Mpp_exec.Dpool.stats_to_json ctx.Mpp_exec.Exec.pool);
             ("channel",
              Mpp_exec.Channel.stats_to_json ctx.Mpp_exec.Exec.channel) ]);
      Printf.eprintf "stats written to %s\n%!" file;
      write_trace trace sink [ ("metrics", Mpp_exec.Metrics.to_json metrics) ]

(* [mppsim profile] — run one query with the full profiler on: per-node
   stats with plan-time estimates, per-segment skew, per-domain pool
   accounting, and a Chrome/Perfetto trace-event timeline (one track per
   executor domain plus coordinator and optimizer tracks) written to a
   file loadable in ui.perfetto.dev. *)
let do_profile ?domains ?(runtime_filters = true) ~out env kind selection sql =
  let trace = Mpp_obs.Trace.create () in
  (* capture the optimizer's phase spans for the optimizer track *)
  let sink = Obs.create () in
  Obs.install sink;
  let plan, est = plan_est_of env kind ~selection sql in
  Obs.uninstall ();
  Mpp_obs.Trace.declare_track trace ~tid:Mpp_exec.Exec.optimizer_tid
    "optimizer";
  Mpp_obs.Trace.add_obs_spans trace ~tid:Mpp_exec.Exec.optimizer_tid
    ~cat:"optimizer" (Obs.root_spans sink);
  let stats = Mpp_exec.Node_stats.create () in
  let ctx =
    Mpp_exec.Exec.create_ctx ~verify:true ?domains ~runtime_filters ~stats
      ~trace ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage ()
  in
  Mpp_exec.Dpool.reset_stats ctx.Mpp_exec.Exec.pool;
  Mpp_exec.Dpool.set_accounting ctx.Mpp_exec.Exec.pool true;
  let t0 = Unix.gettimeofday () in
  let res = Mpp_exec.Exec.exec ctx plan in
  let dt = Unix.gettimeofday () -. t0 in
  Mpp_exec.Dpool.set_accounting ctx.Mpp_exec.Exec.pool false;
  let nrows =
    Array.fold_left
      (fun acc v -> acc + Mpp_storage.Vec.length v)
      0 res.Mpp_exec.Exec.rows
  in
  print_string (Mpp_exec.Explain.analyze ~est plan stats);
  print_metrics env (Mpp_exec.Exec.metrics ctx);
  Printf.printf "(%d rows in %.2f ms)\n" nrows (dt *. 1000.0);
  Array.iteri
    (fun i (d : Mpp_exec.Dpool.domain_stats) ->
      Printf.printf
        "domain %d: %d task(s), busy %.2f ms, wait %.2f ms\n" i
        d.Mpp_exec.Dpool.tasks
        (d.Mpp_exec.Dpool.busy_s *. 1000.0)
        (d.Mpp_exec.Dpool.wait_s *. 1000.0))
    (Mpp_exec.Dpool.stats ctx.Mpp_exec.Exec.pool);
  Mpp_obs.Trace.write_file trace out;
  Printf.printf
    "trace written to %s (%d events, %d tracks) — open in ui.perfetto.dev\n"
    out
    (Mpp_obs.Trace.event_count trace)
    (List.length (Mpp_obs.Trace.track_ids trace))

(* [mppsim lint] — run the abstract-interpretation linter
   ({!Mpp_analysis.Analysis.Lint}) over the plans both optimizers produce
   with the simplifier disabled: redundant conjuncts, contradictory
   conjuncts and filters, and statically dead Append branches survive in
   the plan exactly as the query (or an optimizer bug) wrote them, and
   each is reported with its plan path and a stable [lint/…] code.  Exits
   1 when anything is flagged, so the [@lint] alias doubles as a
   workload-hygiene gate. *)
let lint_report ~catalog name kname plan nfind =
  let fs = Mpp_analysis.Analysis.Lint.plan ~catalog plan in
  nfind := !nfind + List.length fs;
  if fs <> [] then begin
    Printf.printf "%-28s %-8s\n" name kname;
    List.iter
      (fun f ->
        Format.printf "  %a@." Mpp_analysis.Analysis.Lint.pp_finding f)
      fs
  end

(* The linter wants the plan as written, so both optimizers run with
   [simplify = false]; everything else stays at the defaults the normal
   pipeline uses. *)
let unsimplified_plans env ~selection logical =
  let orca =
    let config =
      { Orca.Optimizer.default_config with
        enable_partition_selection = selection;
        simplify = false }
    in
    Orca.Optimizer.optimize
      (Orca.Optimizer.create ~config ~stats:env.W.Runner.stats
         ~catalog:env.W.Runner.catalog ())
      logical
  and planner =
    let config = { Mpp_planner.Planner.default_config with simplify = false } in
    Mpp_planner.Planner.plan
      (Mpp_planner.Planner.create ~config ~catalog:env.W.Runner.catalog ())
      logical
  in
  [ ("orca", orca); ("planner", planner) ]

let lint_sweep env selection ~workload ~biggen sql_opt nfind =
  let lint_logical name logical =
    List.iter
      (fun (kname, plan) ->
        lint_report ~catalog:env.W.Runner.catalog name kname plan nfind)
      (unsimplified_plans env ~selection logical)
  in
  if workload then
    List.iter
      (fun (qu : W.Queries.query) ->
        lint_logical qu.W.Queries.name
          (Mpp_sql.Sql.to_logical env.W.Runner.catalog qu.W.Queries.sql))
      W.Queries.all;
  if biggen then
    List.iter
      (fun spec ->
        let benv = W.Biggen.generate spec in
        let catalog = benv.W.Biggen.catalog in
        let name = benv.W.Biggen.name in
        let orca_plan =
          let config =
            { Orca.Optimizer.default_config with
              enable_partition_selection = selection;
              simplify = false }
          in
          Orca.Optimizer.optimize
            (Orca.Optimizer.create ~config ~stats:benv.W.Biggen.stats
               ~catalog ())
            benv.W.Biggen.logical
        in
        lint_report ~catalog name "orca" orca_plan nfind;
        let planner_plan =
          let config =
            { Mpp_planner.Planner.default_config with simplify = false }
          in
          Mpp_planner.Planner.plan
            (Mpp_planner.Planner.create ~config ~catalog ())
            benv.W.Biggen.logical
        in
        lint_report ~catalog name "planner" planner_plan nfind)
      (W.Biggen.default_suite ());
  match sql_opt with
  | Some sql ->
      lint_logical "query" (Mpp_sql.Sql.to_logical env.W.Runner.catalog sql)
  | None -> ()

let do_lint env selection ~workload ~biggen sql_opt =
  let nfind = ref 0 in
  if not (workload || biggen) && sql_opt = None then begin
    prerr_endline "mppsim lint: provide a SQL argument, --workload or --biggen";
    exit 2
  end;
  lint_sweep env selection ~workload ~biggen sql_opt nfind;
  if !nfind > 0 then begin
    Printf.printf "%d lint finding(s)\n" !nfind;
    exit 1
  end
  else print_endline "no lint findings"

(* [mppsim check] — run the multi-pass plan verifier over the plans both
   optimizers produce (for one SQL statement, or for the whole built-in
   workload with [--workload]) and pretty-print the diagnostics.  The
   optimizers already gate every plan they emit on the verifier's error
   diagnostics, so a plan that comes back at all can only carry warnings;
   an optimizer-side rejection is reported as a failure here too.  Exits
   1 when anything fails, so the target doubles as a CI smoke test. *)
module Serve = Mpp_serve.Serve

let serve_optimizer = function Orca -> Serve.Orca | Planner -> Serve.Planner

let serve_config ?(workers = 2) ?(capacity = 4) ?domains kind =
  {
    Serve.default_config with
    optimizer = serve_optimizer kind;
    workers;
    capacity;
    exec_domains = (match domains with Some d -> d | None -> 1);
  }

let with_server env config f =
  let srv =
    Serve.create ~config ~stats:env.W.Runner.stats
      ~catalog:env.W.Runner.catalog ~storage:env.W.Runner.storage ()
  in
  Fun.protect ~finally:(fun () -> Serve.close srv) (fun () -> f srv)

let rows_sorted rows =
  List.sort
    (List.compare Mpp_expr.Value.compare)
    (List.map Array.to_list rows)

let do_check env selection ~workload ~biggen sql_opt =
  let nfail = ref 0 in
  let report ?(catalog = env.W.Runner.catalog) name kname = function
    | Error msg ->
        incr nfail;
        Printf.printf "%-28s %-8s rejected by optimizer: %s\n" name kname msg
    | Ok plan -> (
        let diags = Mpp_verify.Verify.check ~catalog plan in
        if Mpp_verify.Diag.has_errors diags then incr nfail;
        match diags with
        | [] -> Printf.printf "%-28s %-8s clean\n" name kname
        | ds ->
            Printf.printf "%-28s %-8s\n" name kname;
            Format.printf "%a@." Mpp_verify.Verify.pp_report ds)
  in
  let guard f =
    match f () with
    | plan -> Ok plan
    | exception Orca.Optimizer.Invalid_plan m -> Error m
    | exception Mpp_planner.Planner.Invalid_plan m -> Error m
  in
  if workload then
    List.iter
      (fun (qu : W.Queries.query) ->
        List.iter
          (fun (kname, kind) ->
            report qu.W.Queries.name kname
              (guard (fun () -> W.Runner.optimize_with env kind qu)))
          [ ("orca", W.Runner.Orca); ("planner", W.Runner.Legacy_planner) ])
      W.Queries.all;
  (* generated big-join suite: every plan verifier-clean under both
     optimizers, and the parallel optimizer (4 domains) must reproduce the
     serial plan exactly *)
  if biggen then
    List.iter
      (fun spec ->
        let benv = W.Biggen.generate spec in
        let catalog = benv.W.Biggen.catalog in
        let orca d () =
          let config =
            { Orca.Optimizer.default_config with
              enable_partition_selection = selection;
              opt_domains = d }
          in
          Orca.Optimizer.optimize
            (Orca.Optimizer.create ~config ~stats:benv.W.Biggen.stats
               ~catalog ())
            benv.W.Biggen.logical
        in
        let name = benv.W.Biggen.name in
        let serial = guard (orca 1) in
        report ~catalog name "orca" serial;
        report ~catalog name "planner"
          (guard (fun () ->
               Mpp_planner.Planner.plan
                 (Mpp_planner.Planner.create ~catalog ())
                 benv.W.Biggen.logical));
        match (serial, guard (orca 4)) with
        | Ok a, Ok b ->
            if Plan.to_string a <> Plan.to_string b then begin
              incr nfail;
              Printf.printf "%-28s %-8s serial and 4-domain plans differ\n"
                name "orca"
            end
            else
              Printf.printf "%-28s %-8s serial = 4-domain plan\n" name "orca"
        | _, Error msg ->
            incr nfail;
            Printf.printf "%-28s %-8s rejected at 4 domains: %s\n" name "orca"
              msg
        | Error _, Ok _ -> () (* serial failure already reported *))
      (W.Biggen.default_suite ());
  (if not (workload || biggen) then
     match sql_opt with
     | Some sql ->
         List.iter
           (fun (kname, kind) ->
             report "query" kname
               (guard (fun () -> plan_of env kind ~selection sql)))
           [ ("orca", Orca); ("planner", Planner) ]
     | None ->
         prerr_endline
           "mppsim check: provide a SQL argument, --workload or --biggen";
         incr nfail);
  (* the same inputs also go through the pre-simplification linter: a
     query carrying a redundant or contradictory predicate is workload rot
     even when the simplifier cleans the plan up *)
  let nfind = ref 0 in
  lint_sweep env selection ~workload ~biggen
    (if workload || biggen then None else sql_opt)
    nfind;
  if !nfind > 0 then Printf.printf "%d lint finding(s)\n" !nfind;
  (* serving-layer smoke: a prepared-statement round trip over the whole
     workload — the second execution of each statement must come out of
     the plan cache and return exactly the cold pass's rows *)
  if workload then begin
    let config = serve_config ~workers:2 ~capacity:2 Orca in
    let serve_fail = ref 0 in
    with_server env config (fun srv ->
        List.iter
          (fun (qu : W.Queries.query) ->
            match
              let p = Serve.prepare srv qu.W.Queries.sql in
              let cold = Serve.execute srv ~session:0 p [] in
              let warm = Serve.execute srv ~session:1 p [] in
              (cold, warm)
            with
            | cold, warm ->
                if not warm.Serve.cache_hit then begin
                  incr serve_fail;
                  Printf.printf "%-28s %-8s warm execution missed the cache\n"
                    qu.W.Queries.name "serve"
                end;
                if rows_sorted cold.Serve.rows <> rows_sorted warm.Serve.rows
                then begin
                  incr serve_fail;
                  Printf.printf "%-28s %-8s warm rows differ from cold rows\n"
                    qu.W.Queries.name "serve"
                end
            | exception e ->
                incr serve_fail;
                Printf.printf "%-28s %-8s failed: %s\n" qu.W.Queries.name
                  "serve" (Printexc.to_string e))
          W.Queries.all;
        let c = Mpp_serve.Plan_cache.stats (Serve.cache srv) in
        Printf.printf
          "serve: %d statements round-tripped, %d cache hit(s), %d miss(es)\n"
          (List.length W.Queries.all)
          c.Mpp_serve.Plan_cache.hits c.Mpp_serve.Plan_cache.misses);
    nfail := !nfail + !serve_fail
  end;
  if !nfail + !nfind > 0 then begin
    Printf.printf "%d plan(s) failed verification or lint\n" (!nfail + !nfind);
    exit 1
  end
  else print_endline "all plans verify clean"

let do_schema env =
  List.iter
    (fun (t : Mpp_catalog.Table.t) ->
      Printf.printf "%-18s %4d column(s), %4d partition(s), %s\n"
        t.Mpp_catalog.Table.name
        (Mpp_catalog.Table.ncols t)
        (Mpp_catalog.Table.nparts t)
        (Mpp_catalog.Distribution.to_string t.Mpp_catalog.Table.distribution))
    (Mpp_catalog.Catalog.tables env.W.Runner.catalog)

let do_repl ?domains ?runtime_filters env kind selection =
  print_endline
    "mppsim repl — TPC-DS demo schema loaded; \\q quits, \\schema lists \
     tables, \\explain SQL shows the plan";
  let rec loop () =
    print_string "mppsim> ";
    match read_line () with
    | exception End_of_file -> ()
    | "\\q" -> ()
    | "" -> loop ()
    | "\\schema" ->
        do_schema env;
        loop ()
    | line ->
        let explain, sql =
          if String.length line > 9 && String.sub line 0 9 = "\\explain " then
            (true, String.sub line 9 (String.length line - 9))
          else (false, line)
        in
        (try
           if explain then
             do_explain ?domains ?runtime_filters env kind selection sql
           else do_run ?domains ?runtime_filters env kind selection sql
         with
        | Mpp_sql.Sql.Error m -> Printf.printf "error: %s\n" m
        | Invalid_argument m -> Printf.printf "error: %s\n" m);
        loop ()
  in
  loop ()

(* ---------------- serving layer ---------------- *)

(* [mppsim serve] — an interactive front end over the serving layer: plain
   SQL statements run through the normalized plan cache; [\prepare] /
   [\execute] exercise explicit bind parameters. *)
let do_serve ?stats_json ?(workers = 2) ?(capacity = 4) ?domains env kind
    _selection =
  let config = serve_config ~workers ~capacity ?domains kind in
  with_server env config (fun srv ->
      let named = Hashtbl.create 16 in
      let anon = Hashtbl.create 64 in
      print_endline
        "mppsim serve — plan-cached sessions on the demo schema; \\q quits, \
         \\prepare NAME SQL, \\execute NAME [v1 v2 ...], \\stats prints \
         cache/admission counters; plain SQL runs through the cache";
      let parse_value s =
        if
          String.length s = 10
          && s.[4] = '-'
          && s.[7] = '-'
          && String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s
        then Mpp_expr.Value.date_of_string s
        else
          match int_of_string_opt s with
          | Some i -> Mpp_expr.Value.Int i
          | None -> (
              match float_of_string_opt s with
              | Some f -> Mpp_expr.Value.Float f
              | None -> Mpp_expr.Value.String s)
      in
      let run_prepared prepared binds =
        let r = Serve.execute srv ~session:0 prepared binds in
        print_rows r.Serve.rows (r.Serve.opt_seconds +. r.Serve.exec_seconds);
        Printf.printf "cache %s; optimizer %.3f ms; executor %.3f ms\n"
          (if r.Serve.cache_hit then "hit" else "miss")
          (r.Serve.opt_seconds *. 1000.0)
          (r.Serve.exec_seconds *. 1000.0)
      in
      let prefixed p line =
        if
          String.length line > String.length p
          && String.sub line 0 (String.length p) = p
        then Some (String.sub line (String.length p)
                     (String.length line - String.length p))
        else None
      in
      let rec loop () =
        print_string "serve> ";
        match read_line () with
        | exception End_of_file -> ()
        | "\\q" -> ()
        | "" -> loop ()
        | "\\stats" ->
            print_endline (Json.to_string_pretty (Serve.stats_to_json srv));
            loop ()
        | line -> (
            (try
               match prefixed "\\prepare " line with
               | Some rest -> (
                   match String.index_opt rest ' ' with
                   | Some i ->
                       let name = String.sub rest 0 i in
                       let sql =
                         String.sub rest (i + 1) (String.length rest - i - 1)
                       in
                       let p = Serve.prepare srv ~name sql in
                       Hashtbl.replace named name p;
                       Printf.printf "prepared %s (%d parameter slot(s))\n"
                         name
                         (Mpp_serve.Normalize.nparams p.Serve.p_norm)
                   | None -> print_endline "usage: \\prepare NAME SQL")
               | None -> (
                   match prefixed "\\execute " line with
                   | Some rest -> (
                       match
                         String.split_on_char ' ' rest
                         |> List.filter (fun s -> s <> "")
                       with
                       | name :: vals -> (
                           match Hashtbl.find_opt named name with
                           | Some p ->
                               let binds =
                                 List.mapi
                                   (fun i v -> (i + 1, parse_value v))
                                   vals
                               in
                               run_prepared p binds
                           | None ->
                               Printf.printf "no prepared statement %s\n"
                                 name)
                       | [] -> print_endline "usage: \\execute NAME [v1 ...]")
                   | None ->
                       (* plain SQL: normalize + cache, so repeating the
                          statement (even with different literals) hits *)
                       let p =
                         match Hashtbl.find_opt anon line with
                         | Some p -> p
                         | None ->
                             let p = Serve.prepare srv line in
                             Hashtbl.replace anon line p;
                             p
                       in
                       run_prepared p [])
             with
            | Mpp_sql.Sql.Error m -> Printf.printf "error: %s\n" m
            | Invalid_argument m -> Printf.printf "error: %s\n" m);
            loop ())
      in
      loop ();
      match stats_json with
      | Some file ->
          Json.to_file file (Serve.stats_to_json srv);
          Printf.eprintf "serve stats written to %s\n%!" file
      | None -> ())

(* [mppsim bench-serve] — sustained-QPS measurement on the mixed workload:
   one cold pass (empty cache) then [repeat] warm passes over [sessions]
   concurrent sessions.  The heavyweight sweep lives in [bench serve];
   this is the quick CLI probe. *)
let do_bench_serve ?stats_json ?(sessions = 4) ?(repeat = 2) ?(workers = 2)
    ?(capacity = 4) ?domains env kind _selection =
  let config = serve_config ~workers ~capacity ?domains kind in
  with_server env config (fun srv ->
      let stmts =
        List.map
          (fun (qu : W.Queries.query) ->
            (Serve.prepare srv qu.W.Queries.sql, []))
          W.Queries.all
      in
      let nq = List.length stmts in
      let t0 = Unix.gettimeofday () in
      let cold = Serve.run_stream srv [| stmts |] in
      let cold_s = Unix.gettimeofday () -. t0 in
      let pass () = List.concat (List.init repeat (fun _ -> stmts)) in
      let t1 = Unix.gettimeofday () in
      let warm = Serve.run_stream srv (Array.init sessions (fun _ -> pass ())) in
      let warm_s = Unix.gettimeofday () -. t1 in
      let warm_rs = List.concat (Array.to_list (Array.map (fun l -> l) warm)) in
      let warm_n = List.length warm_rs in
      let hits =
        List.length (List.filter (fun r -> r.Serve.cache_hit) warm_rs)
      in
      let hit_opt_ms =
        match List.filter (fun r -> r.Serve.cache_hit) warm_rs with
        | [] -> 0.0
        | rs ->
            List.fold_left (fun a r -> a +. r.Serve.opt_seconds) 0.0 rs
            *. 1000.0
            /. float_of_int (List.length rs)
      in
      (* warm results must be row-identical to the cold pass, per query *)
      let cold_rows = List.map (fun r -> rows_sorted r.Serve.rows) cold.(0) in
      Array.iter
        (fun rs ->
          List.iteri
            (fun i r ->
              let want = List.nth cold_rows (i mod nq) in
              if rows_sorted r.Serve.rows <> want then begin
                prerr_endline "bench-serve: warm rows differ from cold rows";
                exit 1
              end)
            rs)
        warm;
      let cold_qps = float_of_int nq /. cold_s in
      let warm_qps = float_of_int warm_n /. warm_s in
      Printf.printf
        "cold: %d queries, 1 session: %.2f s (%.1f QPS)\n\
         warm: %d queries, %d session(s): %.2f s (%.1f QPS)\n\
         warm cache hit rate: %.2f; mean optimizer time on hits: %.3f ms\n"
        nq cold_s cold_qps warm_n sessions warm_s warm_qps
        (float_of_int hits /. float_of_int (max warm_n 1))
        hit_opt_ms;
      match stats_json with
      | Some file ->
          Json.to_file file
            (Json.Obj
               [
                 ("cold_qps", Json.Float cold_qps);
                 ("warm_qps", Json.Float warm_qps);
                 ("sessions", Json.Int sessions);
                 ("hit_rate",
                  Json.Float
                    (float_of_int hits /. float_of_int (max warm_n 1)));
                 ("hit_opt_ms", Json.Float hit_opt_ms);
                 ("serve", Serve.stats_to_json srv);
               ]);
          Printf.eprintf "serve stats written to %s\n%!" file
      | None -> ())

(* ---------------- cmdliner wiring ---------------- *)

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ]
         ~doc:"Trace optimizer decisions (selector placement, join \
               orientation) to stderr.")

let setup_logs verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let optimizer_arg =
  let kind_conv = Arg.enum [ ("orca", Orca); ("planner", Planner) ] in
  Arg.(value & opt kind_conv Orca & info [ "optimizer"; "o" ]
         ~doc:"Optimizer to use: orca (default) or planner.")

let no_selection_arg =
  Arg.(value & flag & info [ "no-selection" ]
         ~doc:"Disable partition selection (the Figure-17 ablation).")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Demo data scale factor.")

let segments_arg =
  Arg.(value & opt int 4 & info [ "segments" ] ~doc:"Number of segments.")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let analyze_arg =
  Arg.(value & flag & info [ "analyze" ]
         ~doc:"Execute the plan and annotate every node with actual rows, \
               partitions scanned/total and wall time (EXPLAIN ANALYZE).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a JSON trace (optimizer counters and spans, executor \
               metrics) to $(docv).")

let parallel_arg =
  Arg.(value & opt (some int) None & info [ "parallel"; "p" ] ~docv:"N"
         ~doc:"Execute with $(docv) OCaml domains (per-segment parallelism). \
               Defaults to $(b,MPP_DOMAINS), else 1 (serial). Results are \
               identical at any setting.")

let opt_domains_arg =
  Arg.(value & opt (some int) None & info [ "opt-domains" ] ~docv:"N"
         ~doc:"Optimize with $(docv) OCaml domains (parallel memo \
               exploration and join-order search). Defaults to \
               $(b,MPP_OPT_DOMAINS), else 1 (serial). The chosen plan is \
               identical at any setting.")

let no_rf_arg =
  Arg.(value & flag & info [ "no-runtime-filters" ]
         ~doc:"Disable runtime join filters in the executor (the Bloom + \
               min-max filters built during hash-join builds and pushed to \
               probe-side scans and Motion sends). The plan is unchanged — \
               annotated filter operators become no-ops — so this isolates \
               the filters' execution-time effect. $(b,MPP_RUNTIME_FILTERS=0) \
               (or $(b,false)/$(b,off)) disables them too; the flag wins.")

let with_env f kind no_selection scale segments verbose =
  setup_logs verbose;
  let env = env_of ~scale ~segments in
  f env kind (not no_selection)

let explain_cmd =
  Cmd.v (Cmd.info "explain" ~doc:"Show the plan for a SQL statement.")
    Term.(const (fun k n sc sg v analyze trace domains opt_domains no_rf sql ->
                    with_env
                    (fun env k sel ->
                      do_explain ~analyze ?trace ?domains ?opt_domains
                        ~runtime_filters:(runtime_filters_on ~no_rf) env k sel
                        sql)
                    k n sc sg v)
          $ optimizer_arg $ no_selection_arg $ scale_arg $ segments_arg
          $ verbose_arg $ analyze_arg $ trace_arg $ parallel_arg
          $ opt_domains_arg $ no_rf_arg $ sql_arg)

let stats_json_arg =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Write the full execution profile (per-node EXPLAIN ANALYZE \
               stats with estimates and per-segment skew, executor metrics, \
               per-domain pool accounting, channel occupancy) as JSON to \
               $(docv).")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Execute a SQL statement on the demo cluster.")
    Term.(const (fun k n sc sg v trace stats_json domains opt_domains no_rf
                     sql -> with_env
                    (fun env k sel ->
                      do_run ?trace ?stats_json ?domains ?opt_domains
                        ~runtime_filters:(runtime_filters_on ~no_rf) env k sel
                        sql)
                    k n sc sg v)
          $ optimizer_arg $ no_selection_arg $ scale_arg $ segments_arg
          $ verbose_arg $ trace_arg $ stats_json_arg $ parallel_arg
          $ opt_domains_arg $ no_rf_arg $ sql_arg)

let profile_cmd =
  let out_arg =
    Arg.(value & opt string "profile.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"Trace-event output file (default $(b,profile.json)); open \
                 it in ui.perfetto.dev or chrome://tracing.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Execute a SQL statement with the full profiler on: EXPLAIN \
          ANALYZE with plan-time estimates and per-segment skew, per-domain \
          busy/wait accounting, and a Chrome/Perfetto trace-event timeline \
          with one track per executor domain plus coordinator and optimizer \
          tracks.")
    Term.(const (fun k n sc sg v out domains no_rf sql -> with_env
                    (fun env k sel ->
                      do_profile ?domains
                        ~runtime_filters:(runtime_filters_on ~no_rf) ~out env
                        k sel sql)
                    k n sc sg v)
          $ optimizer_arg $ no_selection_arg $ scale_arg $ segments_arg
          $ verbose_arg $ out_arg $ parallel_arg $ no_rf_arg $ sql_arg)

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive SQL prompt on the demo cluster.")
    Term.(const (fun k n sc sg v domains no_rf -> with_env
                    (fun env k sel ->
                      do_repl ?domains
                        ~runtime_filters:(runtime_filters_on ~no_rf) env k sel)
                    k n sc sg v)
          $ optimizer_arg $ no_selection_arg $ scale_arg $ segments_arg
          $ verbose_arg $ parallel_arg $ no_rf_arg)

let check_cmd =
  let workload_arg =
    Arg.(value & flag & info [ "workload" ]
           ~doc:"Check every built-in workload query instead of one SQL \
                 statement.")
  in
  let biggen_arg =
    Arg.(value & flag & info [ "biggen" ]
           ~doc:"Check the generated big-join suite (star/chain/clique at \
                 10/16/24 relations): both optimizers must verify clean and \
                 the serial and 4-domain optimizations must pick identical \
                 plans.")
  in
  let sql_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify the plans both optimizers produce (structure, \
          schema, distribution, partition accounting, runtime filters, \
          pruning soundness) and run the predicate linter over the same \
          inputs; exit 1 on any error-severity diagnostic or lint \
          finding.")
    Term.(const (fun n sc sg v workload biggen sql -> with_env
                    (fun env _k sel -> do_check env sel ~workload ~biggen sql)
                    Orca n sc sg v)
          $ no_selection_arg $ scale_arg $ segments_arg $ verbose_arg
          $ workload_arg $ biggen_arg $ sql_opt_arg)

let lint_cmd =
  let workload_arg =
    Arg.(value & flag & info [ "workload" ]
           ~doc:"Lint every built-in workload query instead of one SQL \
                 statement.")
  in
  let biggen_arg =
    Arg.(value & flag & info [ "biggen" ]
           ~doc:"Lint the generated big-join suite under both optimizers.")
  in
  let sql_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the predicate-analysis linter over the unsimplified plans \
          both optimizers produce: redundant conjuncts, contradictory \
          conjuncts and filters, statically dead Append branches. Exit 1 \
          on any finding.")
    Term.(const (fun n sc sg v workload biggen sql -> with_env
                    (fun env _k sel -> do_lint env sel ~workload ~biggen sql)
                    Orca n sc sg v)
          $ no_selection_arg $ scale_arg $ segments_arg $ verbose_arg
          $ workload_arg $ biggen_arg $ sql_opt_arg)

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
         ~doc:"Number of executor worker domains serving admitted queries.")

let capacity_arg =
  Arg.(value & opt int 4 & info [ "capacity" ] ~docv:"N"
         ~doc:"Admission-control capacity: maximum queries in flight.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Interactive serving front end on the demo cluster: prepared \
          statements with bind parameters, a normalized plan cache \
          (literals lifted to parameters, pruning-sensitive slots reused \
          without re-optimization) and admission control. Plain SQL runs \
          through the cache; $(b,\\\\prepare)/$(b,\\\\execute) exercise \
          explicit binds and $(b,\\\\stats) prints cache and admission \
          counters.")
    Term.(const (fun k n sc sg v stats_json workers capacity domains ->
              with_env
                (fun env k sel ->
                  do_serve ?stats_json ~workers ~capacity ?domains env k sel)
                k n sc sg v)
          $ optimizer_arg $ no_selection_arg $ scale_arg $ segments_arg
          $ verbose_arg $ stats_json_arg $ workers_arg $ capacity_arg
          $ parallel_arg)

let bench_serve_cmd =
  let sessions_arg =
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N"
           ~doc:"Concurrent sessions in the warm pass.")
  in
  let repeat_arg =
    Arg.(value & opt int 2 & info [ "repeat" ] ~docv:"N"
           ~doc:"Workload passes per session in the warm phase.")
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Quick QPS probe of the serving layer: one cold pass over the \
          built-in workload (empty plan cache), then $(b,--repeat) warm \
          passes over $(b,--sessions) concurrent sessions. Reports cold \
          vs warm QPS, cache hit rate and mean optimizer time on hits, \
          and asserts warm results are row-identical to cold. The full \
          session sweep lives in $(b,bench serve).")
    Term.(const (fun k n sc sg v stats_json sessions repeat workers capacity
                     domains ->
              with_env
                (fun env k sel ->
                  do_bench_serve ?stats_json ~sessions ~repeat ~workers
                    ~capacity ?domains env k sel)
                k n sc sg v)
          $ optimizer_arg $ no_selection_arg $ scale_arg $ segments_arg
          $ verbose_arg $ stats_json_arg $ sessions_arg $ repeat_arg
          $ workers_arg $ capacity_arg $ parallel_arg)

let schema_cmd =
  Cmd.v (Cmd.info "schema" ~doc:"List the demo schema's tables.")
    Term.(const (fun sc sg ->
              do_schema (env_of ~scale:sc ~segments:sg))
          $ scale_arg $ segments_arg)

let main =
  Cmd.group
    (Cmd.info "mppsim" ~version:"1.0.0"
       ~doc:
         "Simulated MPP database with partitioned-table optimization \
          (SIGMOD 2014 reproduction).")
    [ explain_cmd; run_cmd; profile_cmd; repl_cmd; serve_cmd; bench_serve_cmd;
      check_cmd; lint_cmd; schema_cmd ]

let () = exit (Cmd.eval main)
